package simtime

// Counter is a monotone event counter: processes add to it and other
// processes wait for it to reach a threshold. It is the building block for
// flags (threshold 1), arrival counts, and epoch-based reusable
// synchronization. A waiter woken by an Add resumes at the adder's virtual
// time (or its own, whichever is later), modelling a shared-memory flag that
// becomes visible the instant it is written.
type Counter struct {
	val     uint64
	lastAt  Time
	waiters []counterWaiter
}

type counterWaiter struct {
	target uint64
	p      *Proc
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.val }

// LastAt returns the virtual time of the most recent Add.
func (c *Counter) LastAt() Time { return c.lastAt }

// Add increments the counter by n at p's current time and wakes every waiter
// whose threshold is now met.
func (c *Counter) Add(p *Proc, n uint64) {
	p.e.touch(c)
	c.val += n
	c.lastAt = p.now
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if c.val >= w.target {
			p.e.postFrom(p, w.p, p.now)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
}

// WaitGE blocks p until the counter reaches at least target. If the counter
// is already there, it returns immediately without yielding: the value was
// published at or before the caller's current time.
func (c *Counter) WaitGE(p *Proc, target uint64) {
	p.e.touch(c)
	if c.val >= target {
		return
	}
	c.waiters = append(c.waiters, counterWaiter{target: target, p: p})
	p.waitList = c
	p.park(parkReason{kind: parkCounter, a: target, b: c.val})
}

// dropWaiter withdraws every wait p has registered on this counter, for
// Engine.Fail: the failed process must not receive a second wakeup from a
// later Add.
func (c *Counter) dropWaiter(p *Proc) {
	rest := c.waiters[:0]
	for _, w := range c.waiters {
		if w.p != p {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
}

// Flag is a one-shot boolean with an associated timestamp and optional
// payload, modelling "post an address/size, peers spin until they see it".
type Flag struct {
	c       Counter
	payload any
}

// Set raises the flag at p's current time, attaching payload for waiters.
// Setting an already-set flag panics: reuse requires a fresh Flag (or a
// Counter with epochs), because a one-shot flag has no well-defined second
// set time.
func (f *Flag) Set(p *Proc, payload any) {
	if f.c.Value() != 0 {
		panic("simtime: Flag.Set on already-set flag")
	}
	f.payload = payload
	f.c.Add(p, 1)
}

// IsSet reports whether the flag has been raised in simulation order. Note
// the caveat documented on the package: non-blocking cross-process reads can
// observe "not yet set" for a set that is scheduled at an earlier virtual
// time but has not executed yet. All PiP-MColl algorithms use blocking waits,
// where wake times are exact.
func (f *Flag) IsSet() bool { return f.c.Value() != 0 }

// Wait blocks p until the flag is set and returns the payload. p's clock
// advances to at least the set time.
func (f *Flag) Wait(p *Proc) any {
	f.c.WaitGE(p, 1)
	p.AdvanceTo(f.c.LastAt())
	return f.payload
}

// Barrier is a reusable n-party barrier. All participants of an epoch resume
// at the virtual time of the last arrival, modelling a sense-reversing
// shared-memory barrier with zero propagation cost (charge any desired cost
// separately before or after).
type Barrier struct {
	parties int
	count   int
	latest  Time
	waiters []*Proc
}

// NewBarrier returns a barrier for the given number of participants.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("simtime: barrier parties must be >= 1")
	}
	return &Barrier{parties: parties}
}

// Parties returns the number of participants per epoch.
func (b *Barrier) Parties() int { return b.parties }

// Wait blocks p until all parties of the current epoch have arrived, then
// resumes everyone at the time of the last arrival.
func (b *Barrier) Wait(p *Proc) {
	p.e.touch(b)
	b.count++
	b.latest = MaxTime(b.latest, p.now)
	if b.count == b.parties {
		release := b.latest
		for _, w := range b.waiters {
			p.e.postFrom(p, w, release)
		}
		b.waiters = b.waiters[:0]
		b.count = 0
		b.latest = 0
		p.AdvanceTo(release)
		return
	}
	b.waiters = append(b.waiters, p)
	p.waitList = b
	p.park(parkReason{kind: parkBarrier, a: uint64(b.count), b: uint64(b.parties)})
}

// dropWaiter withdraws p's pending arrival, for Engine.Fail: the epoch's
// arrival count is rolled back so the surviving parties' barrier state stays
// consistent (it still cannot complete unless the layer above also fails or
// releases them — that is the failure detector's job, not the barrier's).
func (b *Barrier) dropWaiter(p *Proc) {
	for i, w := range b.waiters {
		if w == p {
			b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
			b.count--
			return
		}
	}
}

// Mailbox is a timestamped, predicate-matched message queue: the meeting
// point between asynchronous deliveries (e.g. packets arriving from the
// fabric) and blocking receivers. Items are matched in FIFO order among
// those satisfying the receiver's predicate; a receiver resumes no earlier
// than the matched item's delivery time.
type Mailbox struct {
	items     []mailItem
	receivers []*mailRecv
}

type mailItem struct {
	t    Time
	item any
}

type mailRecv struct {
	p      *Proc
	match  func(any) bool
	result any
	filled bool
	peek   bool  // observe without consuming (for Probe-style waiting)
	timer  *bool // pending deadline timer's cancel flag (GetDeadline)
	dead   bool  // timed out: skip and drop this receiver
}

// Put deposits item at p's current time. If a parked receiver matches, it is
// woken immediately (at max of the two clocks); otherwise the item queues.
func (m *Mailbox) Put(p *Proc, item any) { m.PutAt(p, p.now, item) }

// PutAt deposits item with an explicit availability time at or after p's
// current time, for "this data lands in the future" patterns such as a NIC
// delivering a packet whose transfer completes later.
func (m *Mailbox) PutAt(p *Proc, t Time, item any) {
	p.e.touch(m)
	if t < p.now {
		t = p.now
	}
	// Wake every matching peeker (they observe without consuming), then
	// hand the item to the first matching real receiver, else queue it.
	rest := m.receivers[:0]
	consumed := false
	for _, r := range m.receivers {
		if r.dead {
			continue // timed out earlier; drop lazily
		}
		matches := r.match == nil || r.match(item)
		switch {
		case matches && r.peek:
			r.result = item
			r.filled = true
			r.stopTimer()
			p.e.postFrom(p, r.p, t)
		case matches && !consumed:
			r.result = item
			r.filled = true
			consumed = true
			r.stopTimer()
			p.e.postFrom(p, r.p, t)
		default:
			rest = append(rest, r)
		}
	}
	m.receivers = rest
	if !consumed {
		m.items = append(m.items, mailItem{t: t, item: item})
	}
}

// stopTimer withdraws the receiver's pending deadline timer, if any, so the
// wake about to be posted is the process's only live event.
func (r *mailRecv) stopTimer() {
	if r.timer != nil {
		*r.timer = true
		r.timer = nil
	}
}

// dropWaiter removes every receive cell p has parked on this mailbox, for
// Engine.Fail: the cell must leave the list immediately (not lazily) because
// pooled Get/Peek cells are recycled by the process's unwind path, and a
// pending deadline timer must be withdrawn so the failure wakeup is the
// process's only live event.
func (m *Mailbox) dropWaiter(p *Proc) {
	rest := m.receivers[:0]
	for _, r := range m.receivers {
		if r.p == p {
			r.stopTimer()
			continue
		}
		rest = append(rest, r)
	}
	m.receivers = rest
}

// Get blocks p until an item matching the predicate (nil matches anything)
// is available, removes it, and returns it. p's clock advances to at least
// the item's availability time.
func (m *Mailbox) Get(p *Proc, match func(any) bool) any {
	p.e.touch(m)
	for i, it := range m.items {
		if match == nil || match(it.item) {
			m.items = append(m.items[:i], m.items[i+1:]...)
			p.AdvanceTo(it.t)
			return it.item
		}
	}
	// Reuse the process's pooled receiver slot: Put removes a matched
	// receiver from the list before waking it, and a process has at most one
	// blocking mailbox wait in flight, so the cell is free again by the time
	// the process can park on another Get/Peek. (GetDeadline must NOT use the
	// pool: its timed-out receivers linger dead in the list, where a recycled
	// cell could be spuriously revived.)
	r := &p.mcell
	*r = mailRecv{p: p, match: match}
	m.receivers = append(m.receivers, r)
	p.waitList = m
	p.park(labeled("mailbox get"))
	if !r.filled {
		panic("simtime: mailbox receiver woken without item")
	}
	res := r.result
	r.result = nil // don't retain the item beyond the call
	return res
}

// GetDeadline is Get bounded by an absolute virtual deadline: it returns
// (item, true) when a matching item arrives at or before the deadline, and
// (nil, false) once the deadline passes with no match — the primitive behind
// the MPI layer's per-operation watchdog timeouts. A deadline at or before
// p's current time with no queued match fails immediately without yielding.
func (m *Mailbox) GetDeadline(p *Proc, match func(any) bool, deadline Time) (any, bool) {
	p.e.touch(m)
	for i, it := range m.items {
		if match == nil || match(it.item) {
			m.items = append(m.items[:i], m.items[i+1:]...)
			p.AdvanceTo(it.t)
			return it.item, true
		}
	}
	if deadline <= p.now {
		return nil, false
	}
	r := &mailRecv{p: p, match: match}
	r.timer = p.e.postTimer(p, deadline)
	m.receivers = append(m.receivers, r)
	p.waitList = m
	p.park(labeled("mailbox get"))
	if r.filled {
		return r.result, true
	}
	// The timer fired first: withdraw from the waiter list (lazily — PutAt
	// skips dead receivers) and report the timeout.
	r.dead = true
	return nil, false
}

// Peek blocks p until an item matching the predicate is available and
// returns it without removing it from the queue — the primitive behind
// MPI_Probe. p's clock advances to at least the item's availability time.
func (m *Mailbox) Peek(p *Proc, match func(any) bool) any {
	p.e.touch(m)
	for _, it := range m.items {
		if match == nil || match(it.item) {
			p.AdvanceTo(it.t)
			return it.item
		}
	}
	r := &p.mcell // see Get for why the pooled slot is safe here
	*r = mailRecv{p: p, match: match, peek: true}
	m.receivers = append(m.receivers, r)
	p.waitList = m
	p.park(labeled("mailbox peek"))
	if !r.filled {
		panic("simtime: mailbox peeker woken without item")
	}
	res := r.result
	r.result = nil
	return res
}

// TryPeek returns the first queued matching item without removing or
// blocking (subject to the non-blocking-read caveat on Flag.IsSet).
func (m *Mailbox) TryPeek(p *Proc, match func(any) bool) (any, bool) {
	p.e.touch(m)
	for _, it := range m.items {
		if match == nil || match(it.item) {
			p.AdvanceTo(it.t)
			return it.item, true
		}
	}
	return nil, false
}

// TryGet removes and returns the first queued item matching the predicate
// without blocking. It reports false if none is queued (subject to the
// non-blocking-read caveat documented on Flag.IsSet).
func (m *Mailbox) TryGet(p *Proc, match func(any) bool) (any, bool) {
	p.e.touch(m)
	for i, it := range m.items {
		if match == nil || match(it.item) {
			m.items = append(m.items[:i], m.items[i+1:]...)
			p.AdvanceTo(it.t)
			return it.item, true
		}
	}
	return nil, false
}

// Len reports the number of queued (unmatched) items.
func (m *Mailbox) Len() int { return len(m.items) }

// Station is a serial single-server resource used for non-blocking queueing
// bookkeeping: NIC injection queues, link serialization, memory-port
// contention. It is work-conserving and earliest-fit: a job arriving at time
// t is scheduled into the earliest idle interval of sufficient length at or
// after t, regardless of the order in which Use is called. This makes the
// model insensitive to simulation execution order — a process that books the
// station "late" in simulation order but with an early arrival timestamp
// still fills the idle gap it would have used in reality.
type Station struct {
	busyIvals []interval // sorted by start, non-overlapping, adjacent merged
	busy      Duration
	jobs      int64
}

type interval struct{ start, end Time }

// Use occupies the station for service starting no earlier than at, and
// returns the start and completion times.
func (s *Station) Use(at Time, service Duration) (start, done Time) {
	if service <= 0 {
		s.jobs++
		return at, at
	}
	// Find the insertion region: skip intervals that end at or before the
	// arrival (they cannot constrain or host this job).
	lo, hi := 0, len(s.busyIvals)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.busyIvals[mid].end <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start = at
	i := lo
	for ; i < len(s.busyIvals); i++ {
		if start.Add(service) <= s.busyIvals[i].start {
			break // fits in the gap before interval i
		}
		start = MaxTime(start, s.busyIvals[i].end)
	}
	done = start.Add(service)
	s.insert(i, interval{start, done})
	s.busy += service
	s.jobs++
	return start, done
}

// insert places iv before index i, merging with touching neighbours to keep
// the list compact (under saturation all jobs collapse into one interval).
func (s *Station) insert(i int, iv interval) {
	mergeLeft := i > 0 && s.busyIvals[i-1].end == iv.start
	mergeRight := i < len(s.busyIvals) && iv.end == s.busyIvals[i].start
	switch {
	case mergeLeft && mergeRight:
		s.busyIvals[i-1].end = s.busyIvals[i].end
		s.busyIvals = append(s.busyIvals[:i], s.busyIvals[i+1:]...)
	case mergeLeft:
		s.busyIvals[i-1].end = iv.end
	case mergeRight:
		s.busyIvals[i].start = iv.start
	default:
		s.busyIvals = append(s.busyIvals, interval{})
		copy(s.busyIvals[i+1:], s.busyIvals[i:])
		s.busyIvals[i] = iv
	}
}

// FreeAt returns the time the last currently-booked job completes (a new job
// may still start earlier by filling a gap).
func (s *Station) FreeAt() Time {
	if len(s.busyIvals) == 0 {
		return 0
	}
	return s.busyIvals[len(s.busyIvals)-1].end
}

// Busy returns the cumulative service time charged to this station.
func (s *Station) Busy() Duration { return s.busy }

// Jobs returns the number of jobs served.
func (s *Station) Jobs() int64 { return s.jobs }

// Reset clears the station to an idle state at time 0.
func (s *Station) Reset() { *s = Station{} }
