package simtime_test

import (
	"fmt"

	"repro/internal/simtime"
)

// Two processes coordinate through a Flag: the consumer blocks until the
// producer posts a value, and virtual time reflects the wait.
func Example() {
	e := simtime.NewEngine()
	var ready simtime.Flag
	e.Spawn("producer", func(p *simtime.Proc) {
		p.Advance(3 * simtime.Microsecond) // compute something
		ready.Set(p, "result")
	})
	e.Spawn("consumer", func(p *simtime.Proc) {
		v := ready.Wait(p)
		fmt.Printf("consumer got %q at t=%v\n", v, p.Now())
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("makespan %v\n", simtime.Duration(e.Horizon()))
	// Output:
	// consumer got "result" at t=3us
	// makespan 3us
}

// A Station serializes jobs on a shared resource; the earliest-fit policy
// backfills idle gaps regardless of booking order.
func ExampleStation() {
	var s simtime.Station
	_, done1 := s.Use(simtime.Time(100), 50) // books [100,150)
	start2, _ := s.Use(simtime.Time(0), 30)  // fits in the gap before it
	fmt.Println(done1, start2)
	// Output:
	// 150ps 0ps
}

// A Barrier releases all parties at the last arrival's virtual time.
func ExampleBarrier() {
	e := simtime.NewEngine()
	b := simtime.NewBarrier(2)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *simtime.Proc) {
			p.Advance(simtime.Duration(i+1) * simtime.Microsecond)
			b.Wait(p)
			if i == 0 {
				fmt.Printf("released at %v\n", p.Now())
			}
		})
	}
	e.Run()
	// Output:
	// released at 2us
}
