package simtime

import (
	"fmt"
	"testing"
)

// Simulator micro-benchmarks: the DES engine's event throughput bounds how
// large a cluster/workload the harness can simulate per wall-clock second.

func BenchmarkEngineSleepPingPong(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Nanosecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMailboxHandoff(b *testing.B) {
	e := NewEngine()
	var m Mailbox
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			m.Put(p, i)
			p.Sleep(0) // force alternation
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			m.Get(p, nil)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBarrier16(b *testing.B) {
	e := NewEngine()
	bar := NewBarrier(16)
	for i := 0; i < 16; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for n := 0; n < b.N; n++ {
				bar.Wait(p)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStationEarliestFit(b *testing.B) {
	var s Station
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Use(Time(i)*10, 7)
	}
}
