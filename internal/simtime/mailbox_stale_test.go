package simtime

import "testing"

// Timed-out GetDeadline receivers are dropped lazily: the dead cell lingers
// in the mailbox's receiver list until a later Put walks past it. These tests
// pin the safety property of that laziness — a stale cell can never satisfy
// (or consume) a later match, even though it names the same process that may
// meanwhile be parked on an unrelated wait.

// TestMailboxStaleDeadlineCellDoesNotConsume: an item matching a timed-out
// receiver's predicate is queued, not handed to the stale cell, and the
// process's live wait on a different predicate is untouched by it.
func TestMailboxStaleDeadlineCellDoesNotConsume(t *testing.T) {
	e := NewEngine()
	var m Mailbox
	e.Spawn("consumer", func(p *Proc) {
		// Wait for "a" with a deadline nothing will beat.
		if v, ok := m.GetDeadline(p, func(x any) bool { return x == "a" }, Time(10*Nanosecond)); ok {
			t.Errorf("deadline get returned %v, want timeout", v)
		}
		// The dead "a" cell now lingers. Park on an unrelated match: if a
		// later Put of "a" revived the stale cell, it would wake this process
		// with the wrong cell filled (Get panics "woken without item").
		if v := m.Get(p, func(x any) bool { return x == "b" }); v != "b" {
			t.Errorf("live get returned %v, want b", v)
		}
		// The "a" put must have been queued for a live taker, not consumed.
		if v, ok := m.TryGet(p, nil); !ok || v != "a" {
			t.Errorf("queued item = %v, %v; want a, true", v, ok)
		}
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(20 * Nanosecond) // past the consumer's deadline
		m.Put(p, "a")            // matches only the stale cell → must queue
		m.Put(p, "b")            // matches the live wait
	})
	mustRun(t, e)
}

// TestMailboxStaleCellsAccumulateHarmlessly: several expired cells from
// different processes linger at once; a later live receiver still gets every
// item, in order, and the stale cells consume none of them.
func TestMailboxStaleCellsAccumulateHarmlessly(t *testing.T) {
	e := NewEngine()
	var m Mailbox
	for i := 0; i < 3; i++ {
		e.Spawn("expired", func(p *Proc) {
			if _, ok := m.GetDeadline(p, nil, Time(Nanosecond)); ok {
				t.Error("expired waiter got an item")
			}
		})
	}
	var got []int
	e.Spawn("late-consumer", func(p *Proc) {
		p.Sleep(10 * Nanosecond) // let every deadline expire first
		for i := 0; i < 3; i++ {
			got = append(got, m.Get(p, nil).(int))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(20 * Nanosecond)
		for i := 0; i < 3; i++ {
			m.Put(p, i)
		}
	})
	mustRun(t, e)
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want [0 1 2]", got)
		}
	}
}

// TestMailboxDeadlineRace: a put arriving exactly at the deadline boundary
// either completes the receive or times out, but never both — and a timed-out
// cell left behind by the race can't steal the item from the queue.
func TestMailboxDeadlineRace(t *testing.T) {
	e := NewEngine()
	var m Mailbox
	var gotItem, timedOut bool
	e.Spawn("consumer", func(p *Proc) {
		v, ok := m.GetDeadline(p, nil, Time(10*Nanosecond))
		gotItem = ok && v == "x"
		timedOut = !ok
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(10 * Nanosecond) // lands exactly on the deadline
		m.Put(p, "x")
		if timedOut {
			// The timer won the tie: the item must still be takeable.
			if v, ok := m.TryGet(p, nil); !ok || v != "x" {
				t.Errorf("after timeout, queued item = %v, %v", v, ok)
			}
		}
	})
	mustRun(t, e)
	if gotItem == timedOut {
		t.Fatalf("gotItem=%v timedOut=%v, want exactly one", gotItem, timedOut)
	}
}
