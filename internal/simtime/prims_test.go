package simtime

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterImmediateWhenAlreadyMet(t *testing.T) {
	e := NewEngine()
	var c Counter
	e.Spawn("adder", func(p *Proc) {
		c.Add(p, 3)
	})
	e.Spawn("waiter", func(p *Proc) {
		p.Sleep(Nanosecond) // run after the adder
		before := p.Now()
		c.WaitGE(p, 2)
		if p.Now() != before {
			t.Errorf("satisfied wait advanced clock from %v to %v", before, p.Now())
		}
	})
	mustRun(t, e)
}

func TestCounterMultipleThresholds(t *testing.T) {
	e := NewEngine()
	var c Counter
	wake := make(map[uint64]Time)
	for _, target := range []uint64{1, 2, 3} {
		target := target
		e.Spawn(fmt.Sprintf("w%d", target), func(p *Proc) {
			c.WaitGE(p, target)
			wake[target] = p.Now()
		})
	}
	e.Spawn("adder", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Nanosecond)
			c.Add(p, 1)
		}
	})
	mustRun(t, e)
	for target, want := range map[uint64]Time{1: Time(10 * Nanosecond), 2: Time(20 * Nanosecond), 3: Time(30 * Nanosecond)} {
		if wake[target] != want {
			t.Errorf("waiter %d woke at %v, want %v", target, wake[target], want)
		}
	}
}

func TestFlagPayloadAndDoubleSetPanics(t *testing.T) {
	e := NewEngine()
	var f Flag
	e.Spawn("setter", func(p *Proc) {
		f.Set(p, "addr:0xdead")
		defer func() {
			if recover() == nil {
				t.Error("double Set did not panic")
			}
		}()
		f.Set(p, "again")
	})
	e.Spawn("waiter", func(p *Proc) {
		if got := f.Wait(p); got != "addr:0xdead" {
			t.Errorf("payload = %v", got)
		}
	})
	mustRun(t, e)
}

func TestBarrierReleasesAtLastArrival(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(4)
	ends := make([]Time, 4)
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Advance(Duration(i*10) * Nanosecond)
			b.Wait(p)
			ends[i] = p.Now()
		})
	}
	mustRun(t, e)
	for i, end := range ends {
		if want := Time(30 * Nanosecond); end != want {
			t.Errorf("proc %d released at %v, want %v", i, end, want)
		}
	}
}

func TestBarrierReusableEpochs(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(3)
	const epochs = 5
	releases := make([][]Time, 3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for ep := 0; ep < epochs; ep++ {
				p.Advance(Duration(i+1) * Nanosecond)
				b.Wait(p)
				releases[i] = append(releases[i], p.Now())
			}
		})
	}
	mustRun(t, e)
	for ep := 0; ep < epochs; ep++ {
		if releases[0][ep] != releases[1][ep] || releases[1][ep] != releases[2][ep] {
			t.Fatalf("epoch %d released at different times: %v %v %v",
				ep, releases[0][ep], releases[1][ep], releases[2][ep])
		}
		if ep > 0 && releases[0][ep] <= releases[0][ep-1] {
			t.Fatalf("epoch %d not after epoch %d", ep, ep-1)
		}
	}
}

func TestBarrierPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestMailboxFIFOAmongMatches(t *testing.T) {
	e := NewEngine()
	var m Mailbox
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Nanosecond)
			m.Put(p, i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, m.Get(p, nil).(int))
		}
	})
	mustRun(t, e)
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want FIFO order", got)
		}
	}
}

func TestMailboxPredicateSkipsNonMatching(t *testing.T) {
	e := NewEngine()
	var m Mailbox
	e.Spawn("producer", func(p *Proc) {
		m.Put(p, "skip")
		m.Put(p, "take")
	})
	e.Spawn("consumer", func(p *Proc) {
		p.Sleep(Nanosecond)
		v := m.Get(p, func(x any) bool { return x == "take" })
		if v != "take" {
			t.Errorf("got %v", v)
		}
		if m.Len() != 1 {
			t.Errorf("mailbox len = %d, want 1 (skip still queued)", m.Len())
		}
	})
	mustRun(t, e)
}

func TestMailboxPutAtFutureDelivery(t *testing.T) {
	e := NewEngine()
	var m Mailbox
	var recvAt Time
	e.Spawn("producer", func(p *Proc) {
		m.PutAt(p, Time(500*Nanosecond), "pkt")
	})
	e.Spawn("consumer", func(p *Proc) {
		m.Get(p, nil)
		recvAt = p.Now()
	})
	mustRun(t, e)
	if want := Time(500 * Nanosecond); recvAt != want {
		t.Fatalf("received at %v, want %v", recvAt, want)
	}
}

func TestMailboxPutAtClampsToPast(t *testing.T) {
	e := NewEngine()
	var m Mailbox
	e.Spawn("producer", func(p *Proc) {
		p.Advance(100 * Nanosecond)
		m.PutAt(p, Time(10*Nanosecond), "late") // clamped to 100ns
	})
	e.Spawn("consumer", func(p *Proc) {
		m.Get(p, nil)
		if want := Time(100 * Nanosecond); p.Now() != want {
			t.Errorf("received at %v, want %v", p.Now(), want)
		}
	})
	mustRun(t, e)
}

func TestMailboxTryGet(t *testing.T) {
	e := NewEngine()
	var m Mailbox
	e.Spawn("p", func(p *Proc) {
		if _, ok := m.TryGet(p, nil); ok {
			t.Error("TryGet on empty mailbox returned ok")
		}
		m.Put(p, 7)
		v, ok := m.TryGet(p, nil)
		if !ok || v != 7 {
			t.Errorf("TryGet = %v, %v", v, ok)
		}
	})
	mustRun(t, e)
}

func TestStationSerializes(t *testing.T) {
	var s Station
	start1, done1 := s.Use(0, 10*Nanosecond)
	if start1 != 0 || done1 != Time(10*Nanosecond) {
		t.Fatalf("job1 = (%v, %v)", start1, done1)
	}
	// Second job arrives while the first is in service: queued.
	start2, done2 := s.Use(Time(3*Nanosecond), 5*Nanosecond)
	if start2 != Time(10*Nanosecond) || done2 != Time(15*Nanosecond) {
		t.Fatalf("job2 = (%v, %v)", start2, done2)
	}
	// Third job arrives after the station is idle again.
	start3, done3 := s.Use(Time(100*Nanosecond), Nanosecond)
	if start3 != Time(100*Nanosecond) || done3 != Time(101*Nanosecond) {
		t.Fatalf("job3 = (%v, %v)", start3, done3)
	}
	if s.Jobs() != 3 || s.Busy() != 16*Nanosecond {
		t.Fatalf("jobs=%d busy=%v", s.Jobs(), s.Busy())
	}
}

// Property: for any job sequence (arrivals in any order), a station never
// overlaps two service intervals, never starts a job before its arrival, and
// its cumulative busy time equals the sum of services.
func TestStationProperty(t *testing.T) {
	f := func(seed int64, njobs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Station
		type ival struct{ start, done Time }
		var booked []ival
		var totalService Duration
		for i := 0; i < int(njobs%60)+1; i++ {
			at := Time(rng.Int63n(int64(200 * Nanosecond))) // arbitrary order arrivals
			service := Duration(rng.Int63n(int64(30 * Nanosecond)))
			start, done := s.Use(at, service)
			if start < at || done != start.Add(service) {
				return false
			}
			if service > 0 {
				booked = append(booked, ival{start, done})
				totalService += service
			}
		}
		for i := range booked {
			for j := i + 1; j < len(booked); j++ {
				a, b := booked[i], booked[j]
				if a.start < b.done && b.start < a.done {
					return false // overlap
				}
			}
		}
		return s.Busy() == totalService
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStationGapFilling(t *testing.T) {
	var s Station
	// Book [100, 200), then a job arriving at 0 with service 50 must fill
	// the idle gap before it rather than queueing behind.
	s.Use(Time(100), Duration(100))
	start, done := s.Use(Time(0), Duration(50))
	if start != 0 || done != 50 {
		t.Fatalf("gap job = (%v,%v), want (0ps,50ps)", start, done)
	}
	// A job too big for the remaining gap [50,100) goes after the booking.
	start, _ = s.Use(Time(0), Duration(60))
	if start != Time(200) {
		t.Fatalf("oversized gap job started at %v, want 200ps", start)
	}
	// Adjacent bookings merge: [0,50)+[50,100)? fill exactly.
	start, done = s.Use(Time(0), Duration(50))
	if start != Time(50) || done != Time(100) {
		t.Fatalf("exact-fit job = (%v,%v), want (50ps,100ps)", start, done)
	}
	if s.FreeAt() != Time(260) {
		t.Fatalf("FreeAt = %v, want 260ps", s.FreeAt())
	}
}

func TestStationZeroService(t *testing.T) {
	var s Station
	start, done := s.Use(Time(40), 0)
	if start != Time(40) || done != Time(40) {
		t.Fatalf("zero-service job = (%v,%v)", start, done)
	}
	if s.Busy() != 0 || s.Jobs() != 1 {
		t.Fatalf("busy=%v jobs=%d", s.Busy(), s.Jobs())
	}
}

// Property: transfer time scales linearly and is never negative.
func TestTransferTimeProperty(t *testing.T) {
	f := func(n uint16) bool {
		bw := 1e9 // 1 GB/s
		d := TransferTime(int(n), bw)
		if d < 0 {
			return false
		}
		d2 := TransferTime(2*int(n), bw)
		diff := d2 - 2*d
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // rounding slack in picoseconds
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTimeEdgeCases(t *testing.T) {
	if TransferTime(0, 1e9) != 0 {
		t.Error("zero bytes should cost nothing")
	}
	if TransferTime(-5, 1e9) != 0 {
		t.Error("negative bytes should cost nothing")
	}
	if TransferTime(100, 0) != 0 {
		t.Error("zero bandwidth means free transfer")
	}
	if got, want := TransferTime(1000, 1e9), Duration(Microsecond); got != want {
		t.Errorf("1000B at 1GB/s = %v, want %v", got, want)
	}
}

func TestPerMessage(t *testing.T) {
	if got, want := PerMessage(1e6), Duration(Microsecond); got != want {
		t.Errorf("1M msg/s gap = %v, want %v", got, want)
	}
	if PerMessage(0) != 0 {
		t.Error("zero rate should cost nothing")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{1500 * Nanosecond, "1.5us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{-2 * Nanosecond, "-2ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(0).Add(5 * Nanosecond)
	b := a.Add(3 * Nanosecond)
	if b.Sub(a) != 3*Nanosecond {
		t.Fatalf("sub = %v", b.Sub(a))
	}
	if MaxTime(a, b) != b || MaxTime(b, a) != b {
		t.Fatal("MaxTime wrong")
	}
}
