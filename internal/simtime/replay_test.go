package simtime

import (
	"testing"
)

// replayWorkload spawns a small program exercising every recorded edge kind:
// pre-run spawns (seeds), self-scheduled sleeps, mailbox handoffs (posts from
// a peer's action), barrier releases, a mid-run child spawn, and trailing
// compute after the last wakeup (exit-clock horizon contribution).
func replayWorkload(e *Engine) {
	mb := &Mailbox{}
	bar := NewBarrier(3)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("worker", func(p *Proc) {
			p.Sleep(Duration(i+1) * Microsecond)
			if i == 0 {
				mb.Put(p, "ping")
				child := p.Spawn("child", func(c *Proc) {
					c.Sleep(5 * Nanosecond)
				})
				_ = child
			} else if i == 1 {
				got := mb.Get(p, func(any) bool { return true })
				if got != "ping" {
					panic("wrong item")
				}
			}
			bar.Wait(p)
			p.Advance(Duration(10+i) * Nanosecond) // trailing compute
		})
	}
}

func TestRecordReplayBitIdentical(t *testing.T) {
	// Bare run: the reference horizon and dispatch count.
	bare := NewEngine()
	replayWorkload(bare)
	mustRun(t, bare)

	// Recorded run of the identical program.
	e := NewEngine()
	rec, err := e.Record()
	if err != nil {
		t.Fatal(err)
	}
	replayWorkload(e)
	mustRun(t, e)
	if e.Horizon() != bare.Horizon() || e.Dispatches() != bare.Dispatches() {
		t.Fatalf("recording perturbed the run: horizon %v/%v dispatches %d/%d",
			e.Horizon(), bare.Horizon(), e.Dispatches(), bare.Dispatches())
	}

	sched, err := rec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Events() != bare.Dispatches() {
		t.Fatalf("schedule has %d events, live run dispatched %d", sched.Events(), bare.Dispatches())
	}
	// Replay twice: the walk is read-only and must verify both times.
	for i := 0; i < 2; i++ {
		h, err := sched.Replay()
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if h != bare.Horizon() {
			t.Fatalf("replay %d horizon %v, live %v", i, h, bare.Horizon())
		}
	}
}

func TestRecordingMarks(t *testing.T) {
	e := NewEngine()
	rec, err := e.Record()
	if err != nil {
		t.Fatal(err)
	}
	var want []Time
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Microsecond)
			rec.Mark(p.Now())
			want = append(want, p.Now())
		}
	})
	mustRun(t, e)
	sched, err := rec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	marks := sched.Marks()
	if len(marks) != len(want) {
		t.Fatalf("got %d marks, want %d", len(marks), len(want))
	}
	for i := range marks {
		if marks[i] != want[i] {
			t.Fatalf("mark %d = %v, want %v", i, marks[i], want[i])
		}
	}
}

// A deadline-bounded wait posts a cancellable timer whose outcome may race
// the real wakeup, so recording it must taint the schedule.
func TestRecordingTaintedByDeadlineTimer(t *testing.T) {
	e := NewEngine()
	rec, err := e.Record()
	if err != nil {
		t.Fatal(err)
	}
	mb := &Mailbox{}
	e.Spawn("waiter", func(p *Proc) {
		if _, ok := mb.GetDeadline(p, func(any) bool { return true }, 10*Time(Microsecond)); ok {
			panic("unexpected delivery")
		}
	})
	mustRun(t, e)
	if rec.Tainted() == "" {
		t.Fatal("timer-based run left the recording untainted")
	}
	if _, err := rec.Schedule(); err == nil {
		t.Fatal("Schedule() succeeded on a tainted recording")
	}
}

func TestRecordRefusals(t *testing.T) {
	e := NewEngine()
	e.SetQuiesceHandler(func(Time) bool { return false })
	if _, err := e.Record(); err == nil {
		t.Fatal("Record accepted an engine with a quiescence handler")
	}

	e2 := NewEngine()
	e2.Spawn("p", func(p *Proc) { p.Sleep(Microsecond) })
	mustRun(t, e2)
	if _, err := e2.Record(); err == nil {
		t.Fatal("Record accepted an engine that already ran")
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	e := NewEngine()
	rec, err := e.Record()
	if err != nil {
		t.Fatal(err)
	}
	replayWorkload(e)
	mustRun(t, e)
	sched, err := rec.Schedule()
	if err != nil {
		t.Fatal(err)
	}

	// A mutated dispatch stream — the shape a stale or corrupted memo entry
	// would have — must fail the walk's per-pop verification.
	k := len(sched.dispatchT) / 2
	sched.dispatchT[k] += Time(Nanosecond)
	if _, err := sched.Replay(); err == nil {
		t.Fatal("replay accepted a mutated dispatch stream")
	}
	sched.dispatchT[k] -= Time(Nanosecond)

	// A mutated horizon must fail the end-of-walk cross-check.
	sched.horizon += Time(Nanosecond)
	if _, err := sched.Replay(); err == nil {
		t.Fatal("replay accepted a mutated horizon")
	}
}
