package simtime

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func mustRun(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatalf("engine run: %v", err)
	}
}

func TestSingleProcAdvance(t *testing.T) {
	e := NewEngine()
	var end Time
	e.Spawn("p", func(p *Proc) {
		p.Advance(5 * Microsecond)
		p.Advance(3 * Microsecond)
		end = p.Now()
	})
	mustRun(t, e)
	if want := Time(8 * Microsecond); end != want {
		t.Fatalf("end time = %v, want %v", end, want)
	}
}

func TestAdvanceNegativeIgnored(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		p.Advance(-Second)
		if p.Now() != 0 {
			t.Errorf("negative advance moved clock to %v", p.Now())
		}
	})
	mustRun(t, e)
}

func TestSleepInterleavesByTime(t *testing.T) {
	e := NewEngine()
	var order []string
	mark := func(p *Proc) { order = append(order, fmt.Sprintf("%s@%v", p.Name(), p.Now())) }
	e.Spawn("a", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		mark(p)
		p.Sleep(20 * Nanosecond) // wakes at 30
		mark(p)
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(15 * Nanosecond)
		mark(p)
		p.Sleep(10 * Nanosecond) // wakes at 25
		mark(p)
	})
	mustRun(t, e)
	want := []string{"a@10ns", "b@15ns", "b@25ns", "a@30ns"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	// Processes scheduled at the same instant must run in spawn order.
	for trial := 0; trial < 3; trial++ {
		e := NewEngine()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(Microsecond)
				order = append(order, i)
			})
		}
		mustRun(t, e)
		for i, got := range order {
			if got != i {
				t.Fatalf("trial %d: order = %v", trial, order)
			}
		}
	}
}

func TestSpawnChildStartsAtParentTime(t *testing.T) {
	e := NewEngine()
	var childStart Time
	e.Spawn("parent", func(p *Proc) {
		p.Advance(42 * Nanosecond)
		p.Spawn("child", func(c *Proc) {
			childStart = c.Now()
		})
	})
	mustRun(t, e)
	if want := Time(42 * Nanosecond); childStart != want {
		t.Fatalf("child start = %v, want %v", childStart, want)
	}
}

func TestHorizonIsMakespan(t *testing.T) {
	e := NewEngine()
	e.Spawn("short", func(p *Proc) { p.Sleep(Microsecond) })
	e.Spawn("long", func(p *Proc) { p.Sleep(9 * Microsecond) })
	mustRun(t, e)
	if want := Time(9 * Microsecond); e.Horizon() != want {
		t.Fatalf("horizon = %v, want %v", e.Horizon(), want)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	var f Flag
	e.Spawn("waiter", func(p *Proc) { f.Wait(p) })
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Parked) != 1 {
		t.Fatalf("parked = %v, want 1 entry", dl.Parked)
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomb", func(p *Proc) {
		p.Sleep(Nanosecond)
		panic("boom")
	})
	e.Spawn("bystander", func(p *Proc) {
		var f Flag
		f.Wait(p) // parked forever; must be torn down, not leaked
	})
	err := e.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.ProcName != "bomb" || pe.Value != "boom" {
		t.Fatalf("panic error = %+v", pe)
	}
	if pe.Stack == "" {
		t.Fatal("panic error missing stack")
	}
}

func TestRunTwiceSequentially(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) { p.Sleep(Nanosecond) })
	mustRun(t, e)
	// A completed engine re-run has no pending events and all procs done.
	if err := e.Run(); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		var bar = NewBarrier(3)
		for i := 0; i < 3; i++ {
			i := i
			e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
				for step := 0; step < 4; step++ {
					p.Sleep(Duration(i+1) * Nanosecond)
					trace = append(trace, fmt.Sprintf("%d:%d@%v", i, step, p.Now()))
					bar.Wait(p)
				}
			})
		}
		mustRun(t, e)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestManyProcsNoLeak(t *testing.T) {
	e := NewEngine()
	var n atomic.Int64
	for i := 0; i < 500; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Duration(p.ID()) * Nanosecond)
			n.Add(1)
		})
	}
	mustRun(t, e)
	if n.Load() != 500 {
		t.Fatalf("ran %d procs, want 500", n.Load())
	}
}

func TestClockMonotoneAcrossWakeups(t *testing.T) {
	e := NewEngine()
	var f Flag
	var waiterEnd Time
	e.Spawn("waiter", func(p *Proc) {
		p.Advance(100 * Nanosecond) // waiter is ahead of the setter
		f.Wait(p)
		waiterEnd = p.Now()
	})
	e.Spawn("setter", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		f.Set(p, nil)
	})
	mustRun(t, e)
	// The flag was set at t=10ns but the waiter had already reached 100ns:
	// its clock must not move backwards.
	if want := Time(100 * Nanosecond); waiterEnd != want {
		t.Fatalf("waiter end = %v, want %v", waiterEnd, want)
	}
}

func TestWaiterAdoptsLaterSetTime(t *testing.T) {
	e := NewEngine()
	var f Flag
	var waiterEnd Time
	e.Spawn("waiter", func(p *Proc) {
		f.Wait(p)
		waiterEnd = p.Now()
	})
	e.Spawn("setter", func(p *Proc) {
		p.Sleep(70 * Nanosecond)
		f.Set(p, nil)
	})
	mustRun(t, e)
	if want := Time(70 * Nanosecond); waiterEnd != want {
		t.Fatalf("waiter end = %v, want %v", waiterEnd, want)
	}
}
