package simtime

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
)

// Engine is a sequential discrete-event scheduler. Exactly one simulated
// process runs at a time; the engine resumes the process owning the earliest
// pending event, waits for it to park or finish, and repeats. All mutable
// engine state is therefore accessed by at most one goroutine at a time,
// with channel handoffs providing the necessary happens-before edges.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	events     eventHeap
	seq        uint64
	procs      []*Proc
	done       int
	ctl        chan struct{} // running proc -> engine: "I have yielded"
	failure    error
	horizon    Time // latest event time popped so far
	running    bool
	obs        Observer
	dispatched int64 // events popped and handed to a process
	// quiesce, when set, is consulted at quiescence (event queue drained with
	// processes still parked) before the deadlock report: a failure-aware
	// layer may fail parked processes (posting them wakeups) and return true
	// to keep the run going. See SetQuiesceHandler.
	quiesce func(at Time) bool
	// rec, when set, captures the run's event DAG for later goroutine-free
	// replay (see replay.go). Recording never alters scheduling: the hooks
	// only append to the recording's buffers.
	rec *Recording
	// chooser, when set, decides the engine's nondeterministic choice points
	// (dispatch tie-breaks) and switches on footprint-slice recording; see
	// choice.go. Nil — the default — keeps scheduling bit-identical to a
	// build without the exploration hook.
	chooser Chooser
	slices  []SliceInfo    // per-dispatch footprints, chooser runs only
	objIDs  map[any]uint32 // sync-object ids for footprints, first-touch order
	tieBuf  []event        // reusable tie-candidate scratch
	sliceT  Time           // event time of the dispatch currently executing
}

// Dispatches returns the number of events the engine has dispatched so far —
// the denominator of the simulator's ns/event and allocs/event throughput
// metrics. It is maintained unconditionally (a single increment per event),
// so bare runs need no observer to be measurable.
func (e *Engine) Dispatches() int64 { return e.dispatched }

// Observer receives scheduling notifications from the engine. All callbacks
// fire while the engine and its processes are serialized, so implementations
// need no locking against the engine itself. The package defines the
// interface (rather than importing an observability package) so that
// instrumentation stays an optional, dependency-free hook.
type Observer interface {
	// ProcBlocked fires when a process parks, with the human-readable
	// blocking reason ("sleep", "mailbox get", "barrier 1/4", ...).
	ProcBlocked(p *Proc, reason string, at Time)
	// ProcResumed fires when a parked process resumes, after its clock has
	// advanced to the wakeup time. waker is the process whose action posted
	// the wakeup (nil when unknown; p itself for self-scheduled sleeps).
	ProcResumed(p *Proc, at Time, waker *Proc)
	// Dispatched fires each time the engine pops an event and hands control
	// to a process; pending is the number of events still queued.
	Dispatched(p *Proc, at Time, pending int)
}

// SetObserver installs (or, with nil, removes) the engine's observer. Call it
// before Run.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// NewEngine returns an empty engine ready for Spawn and Run.
func NewEngine() *Engine {
	return &Engine{ctl: make(chan struct{})}
}

// procState tracks where a process is in its lifecycle, for deadlock
// reporting and internal sanity checks.
type procState int

const (
	stNew procState = iota
	stScheduled
	stRunning
	stParked
	stDone
)

// killToken is panicked inside a parked process goroutine during engine
// teardown so that its deferred recover can exit the goroutine quietly.
type killTokenType struct{}

var killToken killTokenType

// Proc is a simulated process: a goroutine driven by the engine, carrying
// its own virtual clock. All Proc methods must be called from the process's
// own goroutine while it is the running process.
type Proc struct {
	e       *Engine
	id      int
	name    string
	now     Time
	resume  chan Time
	state   procState
	poison  bool
	fn      func(*Proc)
	started bool
	waiting parkReason // blocking reason, formatted lazily for deadlock reports
	detail  waitDetail // structured detail set by the layer above (e.g. recv src=1 tag=9)
	waitsOn int        // proc id this process is known to wait on, or -1
	wokenBy *Proc      // process whose action posted the pending wakeup
	hook    func(*Proc)
	mcell   mailRecv // reusable mailbox-receiver slot (see Mailbox.Get)
	// dead marks a fail-stop process death declared by the layer above
	// (MarkDead); the process goroutine still unwinds and exits normally.
	dead bool
	// failCause, when non-nil, is delivered as a panic the next time the
	// process resumes from a park — the mechanism Engine.Fail uses to unwind
	// a process blocked on a wait that a peer's death made unsatisfiable.
	failCause any
	// waitList is the primitive whose waiter list currently holds this
	// parked process (nil for event-scheduled parks like Sleep). Engine.Fail
	// uses it to withdraw the process before posting the failure wakeup, so
	// no primitive can post a second wakeup for an already-failed process.
	waitList waiterList
}

// waiterList is implemented by the synchronization primitives that keep
// parked processes in waiter lists (Mailbox, Counter, Barrier). dropWaiter
// removes every entry belonging to p, leaving other waiters untouched.
type waiterList interface {
	dropWaiter(p *Proc)
}

// waitDetail is the pending-operation annotation set via SetWaitDetail,
// stored as raw operands and formatted only when a deadlock or timeout
// report needs the string — annotating every blocking operation costs no
// allocation.
type waitDetail struct {
	op       string
	src, tag int
}

// String renders "op src=S tag=T", or "" for the zero detail.
func (d waitDetail) String() string {
	if d.op == "" {
		return ""
	}
	return fmt.Sprintf("%s src=%d tag=%d", d.op, d.src, d.tag)
}

// parkReason is a lazily-formatted blocking reason: either a static label or
// a kind plus two integer operands. Hot-path parks store only this small
// value; the human-readable string is produced on demand — when an engine
// observer is attached, or when the watchdog/deadlock report fires — so a
// bare run never pays a fmt.Sprintf per park.
type parkReason struct {
	label string // used verbatim when kind == parkLabeled
	kind  parkKind
	a, b  uint64
}

type parkKind uint8

const (
	parkLabeled parkKind = iota // label carries the reason verbatim
	parkCounter                 // "counter>=a (now b)"
	parkBarrier                 // "barrier a/b"
)

// labeled wraps a static reason string (no formatting ever needed).
func labeled(s string) parkReason { return parkReason{label: s} }

// String renders the reason exactly as the eager implementation did, so
// observer streams, golden traces and deadlock reports are byte-identical.
func (r parkReason) String() string {
	switch r.kind {
	case parkCounter:
		return fmt.Sprintf("counter>=%d (now %d)", r.a, r.b)
	case parkBarrier:
		return fmt.Sprintf("barrier %d/%d", r.a, r.b)
	default:
		return r.label
	}
}

// ID returns the process's engine-unique identifier, assigned in spawn order.
func (p *Proc) ID() int { return p.id }

// Name returns the label given at spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the process's current virtual time.
func (p *Proc) Now() Time { return p.now }

// Engine returns the engine driving this process.
func (p *Proc) Engine() *Engine { return p.e }

// Advance moves the process's clock forward by d without yielding to the
// scheduler. It models local computation: no other process can observe the
// intermediate instants, so no event needs to be scheduled. Negative
// durations are ignored.
func (p *Proc) Advance(d Duration) {
	if d > 0 {
		p.now = p.now.Add(d)
	}
}

// AdvanceTo moves the process's clock forward to t if t is in its future.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.now {
		p.now = t
	}
}

// Sleep advances the clock by d and yields, letting any process with an
// earlier event run first. Use it when the waiting interval should interleave
// with other processes' activity (e.g. polling loops); use Advance for pure
// local compute.
func (p *Proc) Sleep(d Duration) { p.SleepLabeled(d, "sleep") }

// SleepLabeled is Sleep with an explicit blocking reason reported to the
// engine observer, so instrumented layers can attribute the wait to a cost
// component (e.g. the fabric labels injection-window stalls "inject-window").
func (p *Proc) SleepLabeled(d Duration, reason string) {
	if d < 0 {
		d = 0
	}
	p.e.postFrom(p, p, p.now.Add(d))
	p.park(labeled(reason))
}

// Yield gives every process with an event at or before the current instant a
// chance to run, then resumes. Equivalent to Sleep(0).
func (p *Proc) Yield() { p.Sleep(0) }

// Spawn starts a child process at the parent's current virtual time.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc {
	return p.e.spawnAt(name, p.now, fn)
}

// SetWaitDetail annotates the process's next blocking wait with the pending
// operation (rendered as "op src=S tag=T" in deadlock reports, e.g.
// "recv src=1 tag=9") and, when known, the id of the process whose action
// must arrive to release it (waitsOn, or -1 when unknown). The annotation
// feeds the engine's deadlock diagnosis; it is cleared automatically when
// the process resumes. Pass an empty op to clear it explicitly.
func (p *Proc) SetWaitDetail(op string, src, tag, waitsOn int) {
	p.detail = waitDetail{op: op, src: src, tag: tag}
	p.waitsOn = waitsOn
}

// SetResumeHook installs (or, with nil, removes) a callback invoked on the
// process's own goroutine each time it resumes from a blocking wait, after
// its clock has advanced to the wakeup time. The fault layer uses it to
// charge OS-noise detours lazily: noise accrued while the process was off
// the CPU is billed the moment it runs again.
func (p *Proc) SetResumeHook(h func(*Proc)) { p.hook = h }

// park blocks the calling process goroutine and hands control back to the
// engine. The process must already have a wakeup arranged: either an event in
// the engine heap (posted via Engine.post) or a slot in some primitive's
// waiter list that will eventually call Engine.post. On resume the clock
// advances to the wakeup time if that is later.
func (p *Proc) park(reason parkReason) {
	p.state = stParked
	p.waiting = reason
	if p.e.obs != nil {
		p.e.obs.ProcBlocked(p, reason.String(), p.now)
	}
	p.e.ctl <- struct{}{}
	t := <-p.resume
	if p.poison {
		panic(killToken)
	}
	p.state = stRunning
	p.waiting = parkReason{}
	p.detail = waitDetail{}
	p.waitsOn = -1
	p.waitList = nil
	p.AdvanceTo(t)
	if p.e.obs != nil {
		waker := p.wokenBy
		p.wokenBy = nil
		p.e.obs.ProcResumed(p, p.now, waker)
	}
	if cause := p.failCause; cause != nil {
		// A failure was delivered while this process was parked (see
		// Engine.Fail): unwind the blocked operation as a panic. The resume
		// hook is skipped — the process is aborting, not progressing.
		p.failCause = nil
		panic(cause)
	}
	if p.hook != nil {
		p.hook(p)
	}
}

// MarkDead declares this process dead in the fail-stop sense: the layer
// above has decided it stops executing. The engine keeps no death behaviour
// of its own — the process goroutine is expected to unwind and exit — but
// the flag lets watchdog diagnoses distinguish "waiting on a wedged peer"
// from "waiting on a dead one".
func (p *Proc) MarkDead() { p.dead = true }

// Dead reports whether MarkDead has been called on this process.
func (p *Proc) Dead() bool { return p.dead }

// Parked reports whether the process is blocked in a park (the state
// Engine.Fail may act on at quiescence).
func (p *Proc) Parked() bool { return p.state == stParked }

// WaitsOn returns the proc id this parked process is known to wait on (set
// via SetWaitDetail), or -1 when unknown.
func (p *Proc) WaitsOn() int { return p.waitsOn }

// Spawn registers a top-level process that starts at virtual time 0. It may
// be called before Run, or by a running process (which starts the child at
// the caller's current time via Proc.Spawn).
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	return e.spawnAt(name, 0, fn)
}

func (e *Engine) spawnAt(name string, at Time, fn func(*Proc)) *Proc {
	p := &Proc{
		e:       e,
		id:      len(e.procs),
		name:    name,
		now:     at,
		resume:  make(chan Time),
		fn:      fn,
		waitsOn: -1,
	}
	e.procs = append(e.procs, p)
	e.post(p, at)
	return p
}

// post schedules a wakeup for p at time t. Each parked process must have at
// most one pending wakeup; the synchronization primitives in this package
// maintain that invariant by removing a process from their waiter lists when
// they post its wakeup.
func (e *Engine) post(p *Proc, t Time) {
	e.postEvent(p, t, nil)
}

func (e *Engine) postEvent(p *Proc, t Time, cancel *bool) {
	p.wokenBy = nil
	p.state = stScheduled
	e.seq++
	e.events.push(event{t: t, seq: e.seq, p: p, cancel: cancel})
	if e.rec != nil {
		e.rec.post(t, cancel != nil)
	}
	if e.chooser != nil && len(e.slices) > 0 && t == e.sliceT {
		// New work posted at the executing slice's own instant: the tie
		// group changed underfoot, so independence analysis must treat this
		// slice as dependent with everything at the instant.
		e.slices[len(e.slices)-1].Joined = true
	}
}

// postFrom is post with attribution: waker is the process whose action made
// p runnable (p itself for self-scheduled wakeups). Since each parked process
// has at most one pending wakeup, the attribution can live on the Proc.
func (e *Engine) postFrom(waker, p *Proc, t Time) {
	e.post(p, t)
	p.wokenBy = waker
}

// postTimer schedules a cancellable wakeup for p at time t and returns the
// cancel flag. Timers back deadline-bounded waits (Mailbox.GetDeadline): if
// the real wakeup arrives first, the waker sets the flag and the engine
// discards the timer event when it surfaces, preserving the one-pending-
// wakeup-per-process invariant.
func (e *Engine) postTimer(p *Proc, t Time) *bool {
	cancel := new(bool)
	e.postEvent(p, t, cancel)
	return cancel
}

// Horizon returns the virtual makespan observed so far: the latest event
// time dispatched or final process clock recorded. After a successful Run it
// is the simulation's total virtual runtime.
func (e *Engine) Horizon() Time { return e.horizon }

// SetQuiesceHandler installs (or, with nil, removes) the failure detector
// consulted at quiescence: when the event queue drains with processes still
// parked, the handler runs before the deadlock report. It may fail parked
// processes via Fail (which posts wakeups) and must return true if it acted;
// returning false — or leaving the event queue empty — falls through to the
// usual DeadlockError. Install it before Run.
func (e *Engine) SetQuiesceHandler(h func(at Time) bool) { e.quiesce = h }

// Fail delivers cause to a parked process as a panic raised from inside its
// blocked operation: the process is withdrawn from whatever waiter list
// holds it, and a wakeup is posted at time at; on resume the process panics
// cause instead of returning from the wait. It is the engine-level primitive
// behind MPI-style failure detection ("this wait can never be satisfied, a
// peer died"). Fail may only be applied to a parked process with no pending
// wakeup of its own — guaranteed inside a quiescence handler, where the event
// queue is empty (a sleeping process holds a pending event, so quiescence
// cannot observe one).
func (e *Engine) Fail(p *Proc, cause any, at Time) {
	if p.state != stParked {
		panic(fmt.Sprintf("simtime: Fail on non-parked process %q", p.name))
	}
	if cause == nil {
		panic("simtime: Fail with nil cause")
	}
	if p.waitList != nil {
		p.waitList.dropWaiter(p)
		p.waitList = nil
	}
	p.failCause = cause
	if e.rec != nil {
		// Failure delivery is not part of the static DAG.
		e.rec.Taint("Engine.Fail delivered a failure")
	}
	e.post(p, at)
}

// ForEachParked calls f for every currently-parked process, in spawn (id)
// order. A process failed by f during the walk moves to the scheduled state
// and is not revisited.
func (e *Engine) ForEachParked(f func(p *Proc)) {
	for _, p := range e.procs {
		if p.state == stParked {
			f(p)
		}
	}
}

// ParkedInfo is the watchdog's structured description of one stuck process:
// who it is, when it parked, the primitive it blocks on, the pending
// operation the layer above annotated via SetWaitDetail, and — when known —
// the process whose action it waits for (the waker chain's next hop).
type ParkedInfo struct {
	ID      int
	Name    string
	At      Time
	Reason  string // blocking primitive ("mailbox get", "barrier 1/4", ...)
	Detail  string // pending op detail ("recv src=1 tag=9"), or ""
	WaitsOn int    // proc id this process waits on, or -1 when unknown
}

// String renders the entry as it appears in DeadlockError.Parked.
func (pi ParkedInfo) String() string {
	s := fmt.Sprintf("%s@%v: %s", pi.Name, pi.At, pi.Reason)
	if pi.Detail != "" {
		s += " [" + pi.Detail + "]"
	}
	return s
}

// DeadlockObserver is the optional extension of Observer the watchdog
// reports through: when the event queue drains with processes still parked,
// the engine hands the full blocked-state diagnosis to the observer before
// returning the DeadlockError, so instrumented runs record the deadlock in
// the same trace that shows how the program got there.
type DeadlockObserver interface {
	DeadlockDetected(parked []ParkedInfo, at Time)
}

// DeadlockError reports that the event queue drained while processes were
// still parked, i.e. the simulated program can make no further progress.
type DeadlockError struct {
	// Parked lists the stuck processes as "name@time: reason" strings.
	Parked []string
	// Info carries the structured diagnosis, ordered by process id.
	Info []ParkedInfo
	// At is the virtual time of the wedge: the horizon when the event queue
	// drained with processes still parked.
	At Time
	// Schedule is the schedule certificate of the interleaving that wedged,
	// set when the run was driven by a certifying chooser (schedule
	// exploration); "" otherwise. It makes the deadlock reproducible from
	// the error message alone.
	Schedule string
}

func (d *DeadlockError) Error() string {
	s := fmt.Sprintf("simtime: deadlock at %v, %d process(es) parked: %s",
		d.At, len(d.Parked), strings.Join(d.Parked, "; "))
	if d.Schedule != "" {
		s += " [schedule " + d.Schedule + "]"
	}
	return s
}

// PanicError wraps a panic raised inside a simulated process.
type PanicError struct {
	ProcName string
	Value    any
	Stack    string
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("simtime: process %q panicked: %v", p.ProcName, p.Value)
}

// Run dispatches events until every process has finished. It returns nil on
// normal completion, a *DeadlockError if processes remain parked with no
// pending events, or a *PanicError if a process panicked. After Run returns,
// all process goroutines have exited.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("simtime: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()

	for {
		if e.failure != nil {
			e.teardown()
			return e.failure
		}
		if len(e.events) == 0 {
			if e.done == len(e.procs) {
				return nil
			}
			// Quiescence with parked processes: give the failure detector a
			// chance to fail waits a peer's death made unsatisfiable before
			// declaring the run wedged.
			if e.quiesce != nil {
				if e.rec != nil {
					e.rec.Taint("quiescence handler consulted")
				}
				if e.quiesce(e.horizon) && len(e.events) > 0 {
					continue
				}
			}
			err := e.deadlock()
			e.teardown()
			return err
		}
		ev := e.events.pop()
		if ev.cancel != nil && *ev.cancel {
			continue // withdrawn timer: its process was woken another way
		}
		if e.chooser != nil {
			if len(e.events) > 0 && e.events[0].t == ev.t {
				ev = e.chooseTie(ev)
			}
			e.slices = append(e.slices, SliceInfo{Proc: ev.p.id})
			e.sliceT = ev.t
		}
		p := ev.p
		e.dispatched++
		if e.rec != nil {
			e.rec.dispatch(ev.t)
		}
		if ev.t > e.horizon {
			e.horizon = ev.t
		}
		if e.obs != nil {
			e.obs.Dispatched(p, ev.t, len(e.events))
		}
		p.state = stRunning
		if !p.started {
			p.started = true
			go p.run(ev.t)
		} else {
			p.resume <- ev.t
		}
		<-e.ctl
	}
}

// run is the top of each process goroutine: it executes the user function
// and reports completion (or a panic) back to the engine.
func (p *Proc) run(start Time) {
	defer func() {
		r := recover()
		if _, killed := r.(killTokenType); killed {
			return // engine teardown; exit without touching the engine
		}
		if r != nil {
			p.e.failure = &PanicError{ProcName: p.name, Value: r, Stack: string(debug.Stack())}
		}
		if p.now > p.e.horizon {
			p.e.horizon = p.now // count compute time after the last event
		}
		p.state = stDone
		p.e.done++
		p.e.ctl <- struct{}{}
	}()
	p.AdvanceTo(start)
	p.fn(p)
}

// deadlock builds the error describing all parked processes and reports the
// diagnosis through the observer (when it implements DeadlockObserver), so
// the watchdog's findings land in the run's trace rather than only in the
// returned error.
func (e *Engine) deadlock() error {
	var info []ParkedInfo
	for _, p := range e.procs {
		if p.state != stDone {
			info = append(info, ParkedInfo{
				ID: p.id, Name: p.name, At: p.now,
				Reason: p.waiting.String(), Detail: p.detail.String(), WaitsOn: p.waitsOn,
			})
		}
	}
	sort.Slice(info, func(i, j int) bool { return info[i].ID < info[j].ID })
	parked := make([]string, len(info))
	for i, pi := range info {
		parked[i] = pi.String()
	}
	if o, ok := e.obs.(DeadlockObserver); ok {
		o.DeadlockDetected(info, e.horizon)
	}
	return &DeadlockError{Parked: parked, Info: info, At: e.horizon, Schedule: e.Certificate()}
}

// teardown force-exits every live process goroutine so that Run never leaks
// goroutines, even on error paths.
func (e *Engine) teardown() {
	for _, p := range e.procs {
		if p.started && p.state != stDone && p.state != stRunning {
			p.poison = true
			p.resume <- 0
		}
	}
}

// event is one pending wakeup in the engine's priority queue.
type event struct {
	t      Time
	seq    uint64 // FIFO tie-break for equal timestamps: lower seq first
	p      *Proc
	cancel *bool // non-nil for timers; true means the event is withdrawn
}

// eventHeap is a typed 4-ary min-heap over (t, seq), sifted inline. A typed
// heap avoids container/heap's per-operation interface boxing (one heap
// allocation per scheduled event), and the 4-ary layout halves the binary
// heap's depth, trading a few extra in-cache comparisons per level for fewer
// cache-missing levels. seq is engine-unique, so (t, seq) is a total order
// and pop order is independent of heap shape: dispatch order — and with it
// every virtual timestamp — is identical to the container/heap
// implementation it replaces.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	a := append(*h, ev)
	*h = a
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{} // release the *Proc and timer references to the GC
	a = a[:n]
	*h = a
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := i
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if a.less(c, min) {
				min = c
			}
		}
		if min == i {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}
