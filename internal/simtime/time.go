// Package simtime implements a deterministic discrete-event simulation
// engine with cooperatively scheduled processes.
//
// Simulated processes are ordinary goroutines, but exactly one of them runs
// at any moment: every blocking primitive (Sleep, Flag.Wait, Mailbox.Recv,
// Barrier.Wait) parks the calling process and returns control to the engine,
// which resumes the process owning the earliest pending event. Each process
// carries its own virtual clock that only moves forward. Equal-time events
// are broken by a monotone sequence number, so a given program always
// produces the same schedule and the same virtual timestamps.
//
// The engine is the substrate for the PiP-MColl reproduction: simulated MPI
// processes are simtime processes, network and memory costs are charged as
// virtual durations, and measured "runtimes" are differences of virtual
// clocks rather than wall-clock samples. This is what makes the benchmark
// harness deterministic and hardware-independent.
package simtime

import "fmt"

// Time is an absolute virtual timestamp, in picoseconds since the start of
// the simulation. Picosecond resolution keeps sub-nanosecond per-byte costs
// (e.g. 0.08 ns/byte at 100 Gb/s) exact enough that rounding never reorders
// events in practice, while still allowing virtual horizons of ~106 days.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations, analogous to package time.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds converts a floating-point number of seconds to a Duration.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

// Micros converts a floating-point number of microseconds to a Duration.
func Micros(us float64) Duration { return Duration(us * float64(Microsecond)) }

// Nanos converts a floating-point number of nanoseconds to a Duration.
func Nanos(ns float64) Duration { return Duration(ns * float64(Nanosecond)) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds reports the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Nanoseconds reports the duration as floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.4gus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", d.Seconds())
	}
}

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the timestamp as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// MaxTime returns the later of two timestamps.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// TransferTime returns the virtual time needed to move n bytes at the given
// sustained rate in bytes per second. A non-positive rate means "infinitely
// fast" and costs nothing; n is clamped at zero.
func TransferTime(n int, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / bytesPerSec * float64(Second))
}

// PerMessage returns the serialization gap implied by a message rate in
// messages per second: the minimum spacing between successive message
// launches from a single serial resource. A non-positive rate costs nothing.
func PerMessage(msgsPerSec float64) Duration {
	if msgsPerSec <= 0 {
		return 0
	}
	return Duration(float64(Second) / msgsPerSec)
}
