package simtime

// Schedule exploration: the engine's nondeterministic choice points, exposed
// as a hook. A sequential discrete-event simulation is deterministic by
// construction — the heap pops a total order over (time, seq) — but that
// determinism is a *policy*, not a property of the modeled system. Wherever
// the model itself leaves an order unspecified, the engine consults an
// attached Chooser instead of silently applying the default:
//
//   - ChooseTie: several events are due at the same virtual instant. The
//     modeled system may run them in any order; the default policy is FIFO
//     by posting sequence.
//   - ChooseMatch: a wildcard receive finds more than one queued message
//     matching its predicate (MPI_ANY_SOURCE). The matching rules allow any
//     of them; the default policy takes the oldest.
//   - ChooseTimeout: a deadline-bounded wait races its timer against a
//     wakeup. The default policy resolves the race by virtual time; under
//     exploration the layer above enumerates both outcomes as a choice.
//   - ChooseKill: reserved for the fault layer's kill-timing enumeration;
//     the engine itself never emits it.
//
// With no chooser attached (the default), none of these paths execute and
// scheduling is bit-identical to a build without this file: all goldens,
// replay recordings and throughput pins are unchanged. The model-checking
// harness in internal/mc attaches a recording/forcing chooser and
// systematically explores the choice tree.

import "fmt"

// ChoiceKind labels one family of nondeterministic choice points.
type ChoiceKind uint8

// The choice-point families. Their one-letter codes (t, m, o, k) are the
// tokens of schedule certificates (see internal/mc).
const (
	ChooseTie     ChoiceKind = iota // dispatch order among equal-time events
	ChooseMatch                     // wildcard receive: which queued match to take
	ChooseTimeout                   // deadline-bounded wait: fire the timeout or block
	ChooseKill                      // fault layer: die at this boundary or continue
)

// Code returns the certificate token letter for the kind.
func (k ChoiceKind) Code() byte {
	switch k {
	case ChooseTie:
		return 't'
	case ChooseMatch:
		return 'm'
	case ChooseTimeout:
		return 'o'
	case ChooseKill:
		return 'k'
	}
	return '?'
}

// KindFromCode is the inverse of Code.
func KindFromCode(c byte) (ChoiceKind, bool) {
	switch c {
	case 't':
		return ChooseTie, true
	case 'm':
		return ChooseMatch, true
	case 'o':
		return ChooseTimeout, true
	case 'k':
		return ChooseKill, true
	}
	return 0, false
}

// String returns the kind's name.
func (k ChoiceKind) String() string {
	switch k {
	case ChooseTie:
		return "tie"
	case ChooseMatch:
		return "match"
	case ChooseTimeout:
		return "timeout"
	case ChooseKill:
		return "kill"
	}
	return fmt.Sprintf("ChoiceKind(%d)", int(k))
}

// Cand describes one alternative at a choice point. For ChooseTie it names
// the process the candidate event wakes; other kinds carry -1.
type Cand struct {
	Proc int
}

// Chooser decides nondeterministic choice points. Choose must return an
// index in [0, len(cands)); returning 0 everywhere reproduces the engine's
// default deterministic schedule exactly. Choose is called while the engine
// is serialized, so implementations need no locking.
type Chooser interface {
	Choose(kind ChoiceKind, cands []Cand) int
}

// Certifier is the optional Chooser extension for failure reporting: a
// chooser that can render the decisions taken so far as a replayable
// schedule certificate. When the engine (or a layer above) raises a typed
// failure under exploration, it attaches the certificate so the failing
// interleaving is reproducible from the error message alone.
type Certifier interface {
	Certificate() string
}

// SetChooser installs (or, with nil, removes) the engine's schedule chooser.
// Call it before Run. While a chooser is attached the engine also records
// per-dispatch footprint slices (see Slices) for independence analysis.
func (e *Engine) SetChooser(c Chooser) { e.chooser = c }

// Chooser returns the attached chooser, or nil.
func (e *Engine) Chooser() Chooser { return e.chooser }

// Certificate returns the attached chooser's schedule certificate, or ""
// when no certifying chooser is attached. Typed failures raised under
// exploration embed it so they are reproducible from the message alone.
func (e *Engine) Certificate() string {
	if c, ok := e.chooser.(Certifier); ok {
		return c.Certificate()
	}
	return ""
}

// SliceInfo is the footprint of one dispatch slice — everything the resumed
// process did between being dispatched and its next park — recorded only
// while a chooser is attached. The model checker's partial-order reduction
// uses it: two equal-time events whose slices touch disjoint synchronization
// objects commute, so only one of their orders needs exploring.
type SliceInfo struct {
	// Proc is the id of the dispatched process.
	Proc int
	// Objs are small ids (assigned per engine, first-touch order) of the
	// synchronization objects — mailboxes, counters, barriers — the slice
	// touched.
	Objs []uint32
	// Joined marks a slice that posted new work at its own instant (or other
	// machinery, like a quiescence handler, posted during it): the tie group
	// changed underfoot, so the slice must be treated as dependent with
	// everything at that instant.
	Joined bool
}

// Slices returns the dispatch-slice footprints recorded so far, in dispatch
// order. The returned slice is shared; callers must not modify it. Empty
// unless a chooser was attached before Run.
func (e *Engine) Slices() []SliceInfo { return e.slices }

// touch records that the running process's current slice accessed the given
// synchronization object. Primitives call it on every operation; with no
// chooser attached it is a single nil check.
func (e *Engine) touch(obj any) {
	if e.chooser == nil || len(e.slices) == 0 {
		return
	}
	if e.objIDs == nil {
		e.objIDs = make(map[any]uint32)
	}
	id, ok := e.objIDs[obj]
	if !ok {
		id = uint32(len(e.objIDs))
		e.objIDs[obj] = id
	}
	s := &e.slices[len(e.slices)-1]
	for _, o := range s.Objs {
		if o == id {
			return
		}
	}
	s.Objs = append(s.Objs, id)
}

// GetChoose is Mailbox.Get with the queued-match selection exposed as a
// ChooseMatch choice point: when a chooser is attached and more than one
// queued item satisfies the predicate, the chooser picks which is taken
// (wildcard-receive semantics — MPI's matching rules allow any of them).
// With no chooser, or fewer than two matches, it is exactly Get.
func (m *Mailbox) GetChoose(p *Proc, match func(any) bool) any {
	if i, ok := m.pickQueued(p, match); ok {
		it := m.items[i]
		m.items = append(m.items[:i], m.items[i+1:]...)
		p.AdvanceTo(it.t)
		return it.item
	}
	return m.Get(p, match)
}

// PeekChoose is Mailbox.Peek with the same ChooseMatch exposure as GetChoose.
// The caller is expected to follow up with an exact (fully-determined) Get, so
// the choice made here decides the match once, not twice.
func (m *Mailbox) PeekChoose(p *Proc, match func(any) bool) any {
	if i, ok := m.pickQueued(p, match); ok {
		it := m.items[i]
		p.AdvanceTo(it.t)
		return it.item
	}
	return m.Peek(p, match)
}

// pickQueued runs the ChooseMatch choice point over the queued matching
// items. It reports false when the default policy applies: no chooser, or
// fewer than two queued matches.
func (m *Mailbox) pickQueued(p *Proc, match func(any) bool) (int, bool) {
	e := p.e
	if e.chooser == nil {
		return 0, false
	}
	e.touch(m)
	var idxs []int
	for i, it := range m.items {
		if match == nil || match(it.item) {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) < 2 {
		return 0, false
	}
	cands := make([]Cand, len(idxs))
	for i := range cands {
		cands[i] = Cand{Proc: -1}
	}
	k := e.chooser.Choose(ChooseMatch, cands)
	if k < 0 || k >= len(idxs) {
		panic(fmt.Sprintf("simtime: chooser picked %d of %d queued matches", k, len(idxs)))
	}
	return idxs[k], true
}

// chooseTie resolves a dispatch tie: ev has just been popped and at least
// one more event is due at the same instant. All equal-time events are
// collected, the chooser picks which goes first, and the rest are pushed
// back (their seq numbers are preserved, so the remaining group re-forms a
// choice point at the next iteration). Withdrawn timers are discarded here
// exactly as the main loop would.
func (e *Engine) chooseTie(ev event) event {
	cands := e.tieBuf[:0]
	cands = append(cands, ev)
	for len(e.events) > 0 && e.events[0].t == ev.t {
		c := e.events.pop()
		if c.cancel != nil && *c.cancel {
			continue
		}
		cands = append(cands, c)
	}
	e.tieBuf = cands
	if len(cands) == 1 {
		return cands[0]
	}
	meta := make([]Cand, len(cands))
	for i, c := range cands {
		meta[i] = Cand{Proc: c.p.id}
	}
	k := e.chooser.Choose(ChooseTie, meta)
	if k < 0 || k >= len(cands) {
		panic(fmt.Sprintf("simtime: chooser picked %d of %d tie candidates", k, len(cands)))
	}
	chosen := cands[k]
	for i, c := range cands {
		if i != k {
			e.events.push(c)
		}
	}
	return chosen
}
