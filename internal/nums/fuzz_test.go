package nums

import (
	"bytes"
	"testing"
)

// FuzzF64RoundTrip: encoding then decoding any 8-aligned byte buffer as
// float64s must reproduce the bytes exactly (including NaN payloads, which
// Go preserves through Float64bits/Float64frombits).
func FuzzF64RoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) - len(data)%F64Size
		in := data[:n]
		v := F64(in)
		out := make([]byte, n)
		PutF64(out, v)
		if !bytes.Equal(in, out) {
			t.Fatalf("round trip changed bytes: %x -> %x", in, out)
		}
	})
}

// FuzzOpsPreserveLength: every operator leaves buffer lengths untouched and
// never panics on aligned same-length inputs.
func FuzzOpsPreserveLength(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		n -= n % F64Size
		acc := append([]byte(nil), a[:n]...)
		src := append([]byte(nil), b[:n]...)
		for _, op := range []Op{Sum, Prod, Min, Max} {
			op.Combine(acc, src)
			if len(acc) != n {
				t.Fatalf("%s changed length", op.Name)
			}
		}
	})
}
