// Package nums provides the typed view the collectives need over raw byte
// buffers: encoding/decoding of little-endian float64 vectors and the
// reduction operators (sum, product, min, max) MPI_Allreduce applies.
// Keeping payloads as []byte everywhere lets the transport layers stay
// type-agnostic while reductions remain numerically real and testable.
package nums

import (
	"encoding/binary"
	"fmt"
	"math"
)

// F64Size is the byte width of one float64 element.
const F64Size = 8

// PutF64 encodes v into dst, which must be exactly 8*len(v) bytes.
func PutF64(dst []byte, v []float64) {
	if len(dst) != F64Size*len(v) {
		panic(fmt.Sprintf("nums: PutF64 buffer %dB for %d elements", len(dst), len(v)))
	}
	for i, x := range v {
		binary.LittleEndian.PutUint64(dst[i*F64Size:], math.Float64bits(x))
	}
}

// F64 decodes b (length a multiple of 8) into a fresh []float64.
func F64(b []byte) []float64 {
	if len(b)%F64Size != 0 {
		panic(fmt.Sprintf("nums: F64 on %dB buffer (not a multiple of 8)", len(b)))
	}
	v := make([]float64, len(b)/F64Size)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*F64Size:]))
	}
	return v
}

// F64At reads element i of the float64 vector encoded in b.
func F64At(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[i*F64Size:]))
}

// SetF64At writes element i of the float64 vector encoded in b.
func SetF64At(b []byte, i int, x float64) {
	binary.LittleEndian.PutUint64(b[i*F64Size:], math.Float64bits(x))
}

// Op is a binary reduction operator over float64 vectors encoded in bytes.
// Combine folds src into acc element-wise; both must have equal length, a
// multiple of 8.
type Op struct {
	Name    string
	Combine func(acc, src []byte)
}

func foldOp(name string, f func(a, b float64) float64) Op {
	return Op{
		Name: name,
		Combine: func(acc, src []byte) {
			if len(acc) != len(src) || len(acc)%F64Size != 0 {
				panic(fmt.Sprintf("nums: %s on mismatched buffers %dB/%dB", name, len(acc), len(src)))
			}
			for i := 0; i < len(acc); i += F64Size {
				a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i:]))
				b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
				binary.LittleEndian.PutUint64(acc[i:], math.Float64bits(f(a, b)))
			}
		},
	}
}

// The standard MPI reduction operators over float64.
var (
	Sum  = foldOp("sum", func(a, b float64) float64 { return a + b })
	Prod = foldOp("prod", func(a, b float64) float64 { return a * b })
	Min  = foldOp("min", math.Min)
	Max  = foldOp("max", math.Max)
)

// Fill writes a deterministic, rank-and-index-dependent float64 pattern into
// buf (length a multiple of 8). Every (seed, index) pair yields a distinct
// value, so tests catch both misplaced and miscombined elements.
func Fill(buf []byte, seed int) {
	if len(buf)%F64Size != 0 {
		panic(fmt.Sprintf("nums: Fill on %dB buffer", len(buf)))
	}
	for i := 0; i < len(buf)/F64Size; i++ {
		SetF64At(buf, i, PatternValue(seed, i))
	}
}

// PatternValue is the deterministic fill value for (seed, index): chosen so
// that sums of distinct subsets differ and floating-point addition is exact
// at the scales the tests use (small integers).
func PatternValue(seed, i int) float64 {
	return float64((seed+1)*1000003%8191) + float64(i%97)
}

// FillBytes writes a deterministic byte pattern (not float64-structured)
// for pure data-movement collectives like scatter and allgather.
func FillBytes(buf []byte, seed int) {
	for i := range buf {
		buf[i] = byte((seed*131 + i*29 + 7) % 251)
	}
}
