package nums

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPutF64RoundTrip(t *testing.T) {
	f := func(v []float64) bool {
		b := make([]byte, F64Size*len(v))
		PutF64(b, v)
		got := F64(b)
		for i := range v {
			if got[i] != v[i] && !(math.IsNaN(got[i]) && math.IsNaN(v[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF64AtSetF64At(t *testing.T) {
	b := make([]byte, 24)
	SetF64At(b, 0, 1.5)
	SetF64At(b, 1, -2.25)
	SetF64At(b, 2, math.Inf(1))
	if F64At(b, 0) != 1.5 || F64At(b, 1) != -2.25 || !math.IsInf(F64At(b, 2), 1) {
		t.Fatalf("decoded %v %v %v", F64At(b, 0), F64At(b, 1), F64At(b, 2))
	}
}

func TestPutF64SizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PutF64(make([]byte, 7), []float64{1})
}

func TestF64BadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	F64(make([]byte, 9))
}

func TestOps(t *testing.T) {
	enc := func(v ...float64) []byte {
		b := make([]byte, F64Size*len(v))
		PutF64(b, v)
		return b
	}
	cases := []struct {
		op   Op
		a, b []float64
		want []float64
	}{
		{Sum, []float64{1, 2, 3}, []float64{10, 20, 30}, []float64{11, 22, 33}},
		{Prod, []float64{2, 3}, []float64{4, 5}, []float64{8, 15}},
		{Min, []float64{1, 9}, []float64{5, 2}, []float64{1, 2}},
		{Max, []float64{1, 9}, []float64{5, 2}, []float64{5, 9}},
	}
	for _, c := range cases {
		acc := enc(c.a...)
		c.op.Combine(acc, enc(c.b...))
		got := F64(acc)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%s: got %v, want %v", c.op.Name, got, c.want)
			}
		}
	}
}

func TestOpMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Sum.Combine(make([]byte, 8), make([]byte, 16))
}

// Property: Sum is commutative and associative on the test pattern values
// (they are small integers, so float addition is exact).
func TestSumOrderIndependent(t *testing.T) {
	f := func(seeds []uint8, n uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		count := int(n%16) + 1
		forward := make([]byte, F64Size*count)
		Fill(forward, 0)
		backward := append([]byte(nil), forward...)
		bufs := make([][]byte, len(seeds))
		for i, s := range seeds {
			bufs[i] = make([]byte, F64Size*count)
			Fill(bufs[i], int(s))
		}
		for _, b := range bufs {
			Sum.Combine(forward, b)
		}
		for i := len(bufs) - 1; i >= 0; i-- {
			Sum.Combine(backward, bufs[i])
		}
		for i := 0; i < count; i++ {
			if F64At(forward, i) != F64At(backward, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternDistinctBySeed(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	Fill(a, 1)
	Fill(b, 2)
	same := 0
	for i := 0; i < 8; i++ {
		if F64At(a, i) == F64At(b, i) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("patterns for different seeds identical")
	}
}

func TestFillBytesDeterministic(t *testing.T) {
	a := make([]byte, 128)
	b := make([]byte, 128)
	FillBytes(a, 5)
	FillBytes(b, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FillBytes not deterministic")
		}
	}
	FillBytes(b, 6)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("FillBytes ignores seed")
	}
}

func TestFillBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Fill(make([]byte, 12), 0)
}
