package query

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/obs"
	"repro/internal/topology"
)

// WriteCellTrace re-executes a cell request's collective once with the
// observability recorder attached and writes the deterministic
// Perfetto/Chrome trace_event JSON to w. The simulation is deterministic,
// so the trace of a completed cell can be regenerated on demand instead of
// being persisted alongside every cached result; two calls for the same
// request produce byte-identical traces. Only cell-kind requests are
// traceable — a figure is many cells, each individually addressable.
func WriteCellTrace(req Request, w io.Writer) error {
	n, err := req.Normalize()
	if err != nil {
		return err
	}
	if n.Kind != KindCell {
		return fmt.Errorf("query: traces are available for cell requests only, not %q", n.Kind)
	}
	spec, err := n.Cell.spec(n.Opts)
	if err != nil {
		return err
	}
	cfg := spec.Lib.Config()
	if n.Cell.Fault != nil {
		plan, err := fault.New(*n.Cell.Fault)
		if err != nil {
			return err
		}
		cfg.Faults = plan
	}
	cluster := topology.New(spec.Nodes, spec.PPN, topology.Block)
	world, err := mpi.NewWorld(cluster, cfg)
	if err != nil {
		return err
	}
	rec := obs.NewRecorder()
	world.Observe(rec)
	size := cluster.Size()
	if err := world.Run(func(r *mpi.Rank) {
		runCollective(spec.Lib, spec.Op, r, size, spec.Bytes)
	}); err != nil {
		return err
	}
	return rec.WritePerfetto(w)
}

// runCollective invokes one collective with freshly allocated buffers —
// the single-iteration body behind traces.
func runCollective(lib *libs.Library, op bench.Op, r *mpi.Rank, size, bytes int) {
	switch op {
	case bench.OpScatter:
		var send []byte
		if r.Rank() == 0 {
			send = make([]byte, size*bytes)
		}
		lib.Scatter(r, 0, send, make([]byte, bytes))
	case bench.OpAllgather:
		lib.Allgather(r, make([]byte, bytes), make([]byte, size*bytes))
	case bench.OpAllreduce:
		lib.Allreduce(r, make([]byte, bytes), make([]byte, bytes), nums.Sum)
	}
}
