package query

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/simtime"
)

// TestCanonicalRoundTrip: decode(encode(r)) is byte-identical to encode(r)
// and derives the same cell addresses — the property that makes the wire
// encoding a valid cache key across processes.
func TestCanonicalRoundTrip(t *testing.T) {
	reqs := []Request{
		{Figure: "9", Opts: Opts{Warmup: 1, Iters: 1}},
		{Cell: &Cell{Library: "PiP-MColl", Collective: "allgather", Nodes: 2, PPN: 2, Bytes: 512}},
		{Cell: &Cell{Library: "PiP-MPICH", Collective: "allreduce", Nodes: 2, PPN: 2, Bytes: 256,
			Fault: &fault.Spec{Seed: 7, Noise: []fault.Noise{{Amplitude: 5 * simtime.Microsecond,
				Period: 100 * simtime.Microsecond}}}}},
		{Tune: &Tune{Nodes: 2, PPN: 2}, Opts: Opts{Warmup: 1, Iters: 1}},
	}
	for _, req := range reqs {
		enc, err := req.Canonical()
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		var back Request
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatal(err)
		}
		enc2, err := back.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Errorf("canonical encoding not a fixed point:\n%s\n%s", enc, enc2)
		}
		j1, err := Build(req)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := Build(back)
		if err != nil {
			t.Fatal(err)
		}
		a1, a2 := j1.Addresses(), j2.Addresses()
		if len(a1) == 0 {
			t.Fatalf("%+v: no cells", req)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Errorf("cell %d address diverged after round trip: %s vs %s", i, a1[i], a2[i])
			}
		}
		k1, _ := req.Key()
		k2, _ := back.Key()
		if k1 != k2 || k1 == "" {
			t.Errorf("request keys diverged: %q vs %q", k1, k2)
		}
	}
}

// TestNormalizeInfersKindAndDefaults: Kind is inferred from the payload
// and Opts pick up the harness defaults, so sparse client requests and
// fully-specified ones normalize to the same canonical form.
func TestNormalizeInfersKindAndDefaults(t *testing.T) {
	n, err := Request{Figure: "6"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != KindFigure || n.Opts.Warmup != 2 || n.Opts.Iters != 3 {
		t.Fatalf("normalized: %+v", n)
	}
	sparse, _ := Request{Figure: "6"}.Canonical()
	explicit, _ := Request{Kind: KindFigure, Figure: "6", Opts: Opts{Warmup: 2, Iters: 3}}.Canonical()
	if !bytes.Equal(sparse, explicit) {
		t.Fatalf("equivalent requests encode differently:\n%s\n%s", sparse, explicit)
	}
}

// TestNormalizeRejects: malformed requests fail loudly with the reason.
func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"empty", Request{}, "exactly one"},
		{"both", Request{Figure: "6", Cell: &Cell{}}, "exactly one"},
		{"unknown figure", Request{Figure: "999"}, "unknown figure"},
		{"unknown lib", Request{Cell: &Cell{Library: "nope", Collective: "scatter", Nodes: 1, PPN: 1, Bytes: 8}}, "unknown library"},
		{"unknown op", Request{Cell: &Cell{Library: "PiP-MColl", Collective: "barrier", Nodes: 1, PPN: 1, Bytes: 8}}, "unknown collective"},
		{"bad shape", Request{Cell: &Cell{Library: "PiP-MColl", Collective: "scatter", Nodes: 0, PPN: 1, Bytes: 8}}, "bad shape"},
		{"bad payload", Request{Cell: &Cell{Library: "PiP-MColl", Collective: "scatter", Nodes: 1, PPN: 1}}, "bad payload"},
		{"odd allreduce", Request{Cell: &Cell{Library: "PiP-MColl", Collective: "allreduce", Nodes: 1, PPN: 1, Bytes: 7}}, "float64"},
		{"bad fault", Request{Cell: &Cell{Library: "PiP-MColl", Collective: "scatter", Nodes: 1, PPN: 1, Bytes: 8,
			Fault: &fault.Spec{Loss: fault.Loss{DropRate: 2}}}}, "drop rate"},
		{"bad tune", Request{Tune: &Tune{Nodes: 0, PPN: 1}}, "bad tune shape"},
		{"bad kind", Request{Kind: "nope", Figure: "6"}, "unknown kind"},
	}
	for _, c := range cases {
		if _, err := c.req.Normalize(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestFigureAddressesMatchRunnerCache: a figure request's addresses are
// exactly the entries a Runner populates for the same figure — the shared
// cache contract between CLIs and the server.
func TestFigureAddressesMatchRunnerCache(t *testing.T) {
	cache, err := bench.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Figure: "1", Opts: Opts{Warmup: 1, Iters: 1}}
	j, err := Build(req)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := bench.Lookup("1")
	if err != nil {
		t.Fatal(err)
	}
	r := bench.NewRunner(bench.RunnerConfig{Parallel: 2, Cache: cache})
	if _, err := r.RunFigure(context.Background(), fig, req.Opts.Bench()); err != nil {
		t.Fatal(err)
	}
	for i, key := range j.CellKeys() {
		if _, ok := cache.Load(j.FigID, key, j.Opts()); !ok {
			t.Errorf("cell %d (%s) not found in runner-populated cache", i, key)
		}
	}
	if hits, _ := cache.Stats(); int(hits) != len(j.CellKeys()) {
		t.Errorf("address probe hit %d of %d cells", hits, len(j.CellKeys()))
	}
}

// TestExecuteMatchesRunnerOutput: Execute (the CLI path through query)
// reproduces byte-identical tables to driving the Runner directly, and a
// second Execute against the same cache is all hits.
func TestExecuteMatchesRunnerOutput(t *testing.T) {
	dir := t.TempDir()
	cache, err := bench.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := bench.NewRunner(bench.RunnerConfig{Parallel: 2, Cache: cache})
	req := Request{Figure: "1", Opts: Opts{Warmup: 1, Iters: 1}}
	resp, err := Execute(context.Background(), r, req)
	if err != nil {
		t.Fatal(err)
	}

	fig, err := bench.Lookup("1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := bench.NewRunner(bench.RunnerConfig{Parallel: 1}).
		RunFigure(context.Background(), fig, req.Opts.Bench())
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != len(tables) {
		t.Fatalf("table counts differ: %d vs %d", len(resp.Tables), len(tables))
	}
	for i := range tables {
		if resp.Tables[i].CSV != tables[i].CSV() {
			t.Errorf("table %d CSV diverged between query path and direct runner", i)
		}
	}

	_, misses := cache.Stats()
	resp2, err := Execute(context.Background(), r, req)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses2 := cache.Stats()
	if misses2 != misses || hits == 0 {
		t.Fatalf("second Execute not fully cached: %d hits, %d->%d misses", hits, misses, misses2)
	}
	for i := range resp.Tables {
		if resp.Tables[i].CSV != resp2.Tables[i].CSV {
			t.Errorf("cached Execute table %d diverged", i)
		}
	}
}

// TestTuneExecute: a tune request produces the ladder table and a
// recommendation, sharing cache entries with bench.TuneWith.
func TestTuneExecute(t *testing.T) {
	cache, err := bench.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := bench.NewRunner(bench.RunnerConfig{Parallel: 2, Cache: cache})
	req := Request{Tune: &Tune{Nodes: 2, PPN: 2}, Opts: Opts{Warmup: 1, Iters: 1}}
	resp, err := Execute(context.Background(), r, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Analysis == "" || !strings.Contains(resp.Analysis, "recommended:") {
		t.Fatalf("tune analysis missing: %q", resp.Analysis)
	}
	_, misses := cache.Stats()
	if misses == 0 {
		t.Fatal("tune run did not populate the cache")
	}
	if _, err := Execute(context.Background(), r, req); err != nil {
		t.Fatal(err)
	}
	hits, misses2 := cache.Stats()
	if misses2 != misses || hits != misses {
		t.Fatalf("second tune not fully cached: %d hits, %d->%d misses", hits, misses, misses2)
	}
}

// TestWhatIfCellExecutesAndCaches: a cell request runs, returns one value,
// and re-running hits the cache; attaching a fault plan changes the
// address (different experiment, different entry).
func TestWhatIfCellExecutesAndCaches(t *testing.T) {
	cache, err := bench.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := bench.NewRunner(bench.RunnerConfig{Parallel: 1, Cache: cache})
	base := Request{Cell: &Cell{Library: "PiP-MColl", Collective: "allgather", Nodes: 2, PPN: 2, Bytes: 256},
		Opts: Opts{Warmup: 1, Iters: 1}}
	resp, err := Execute(context.Background(), r, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Tables) != 1 || resp.Cells != 1 {
		t.Fatalf("cell response: %d tables, %d cells", len(resp.Tables), resp.Cells)
	}
	if _, err := Execute(context.Background(), r, base); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 1 {
		t.Fatalf("what-if re-run not cached: %d hits", hits)
	}

	faulty := base
	faulty.Cell = &Cell{Library: "PiP-MColl", Collective: "allgather", Nodes: 2, PPN: 2, Bytes: 256,
		Fault: &fault.Spec{Seed: 1, Noise: []fault.Noise{{Amplitude: 5 * simtime.Microsecond,
			Period: 50 * simtime.Microsecond}}}}
	jb, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	jf, err := Build(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if jb.Addresses()[0] == jf.Addresses()[0] {
		t.Fatal("fault plan did not change the cell's content address")
	}
}

// TestWriteCellTraceDeterministic: the on-demand Perfetto export is
// byte-identical across invocations and refuses non-cell requests.
func TestWriteCellTraceDeterministic(t *testing.T) {
	req := Request{Cell: &Cell{Library: "PiP-MColl", Collective: "allgather", Nodes: 2, PPN: 2, Bytes: 256},
		Opts: Opts{Warmup: 1, Iters: 1}}
	var a, b bytes.Buffer
	if err := WriteCellTrace(req, &a); err != nil {
		t.Fatal(err)
	}
	if err := WriteCellTrace(req, &b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("trace not deterministic (%d vs %d bytes)", a.Len(), b.Len())
	}
	if !json.Valid(a.Bytes()) {
		t.Fatal("trace is not valid JSON")
	}
	if err := WriteCellTrace(Request{Figure: "1"}, &a); err == nil {
		t.Fatal("figure request produced a trace")
	}
}
