package query

import (
	"context"
	"time"

	"repro/internal/bench"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// Table is one result table in wire form: the aligned text rendering the
// CLIs print and the CSV rendering they persist. Comparing the CSV bytes of
// two responses is the byte-identity check the goldens use, so equality
// here means equality everywhere.
type Table struct {
	Title string `json:"title"`
	Text  string `json:"text"`
	CSV   string `json:"csv"`
}

// Stage is one wall-clock stage span of a request's lifecycle, in
// microseconds. The serving layer fills the full breakdown (decode,
// admission, cache_lookup, queue_wait, singleflight_wait, execute,
// encode); the CLI path fills the subset it can observe.
type Stage struct {
	Name string  `json:"name"`
	US   float64 `json:"us"`
}

// Response is the outcome of executing a Request, shared verbatim between
// query.Execute (the CLI path) and the pipmcoll-serve /query endpoint.
type Response struct {
	// Request echoes the normalized request and Key its content address.
	Request Request `json:"request"`
	Key     string  `json:"key"`
	// RequestID is the server-assigned (or client-provided) request ID
	// threaded through logs and the flight recorder; empty on CLI runs.
	RequestID string `json:"request_id,omitempty"`
	// Cells is the number of measurement cells the request decomposed
	// into; CacheHits of them were served without simulating (filled only
	// by executors that track per-cell hits — the server always does).
	Cells     int `json:"cells"`
	CacheHits int `json:"cache_hits"`
	// Tables are the result tables in declaration order.
	Tables []Table `json:"tables"`
	// Analysis carries kind-specific derived output (the tune
	// recommendation text); empty otherwise.
	Analysis string `json:"analysis,omitempty"`
	// ElapsedMS is the executor-measured wall time of the run.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Stages is the wall-clock stage breakdown of this request's
	// lifecycle, when the executor traced it.
	Stages []Stage `json:"stages,omitempty"`
}

// NewResponse assembles the wire response for a completed job.
func NewResponse(j *Job, tables []*stats.Table, cacheHits int, elapsedMS float64) (*Response, error) {
	key, err := j.Req.Key()
	if err != nil {
		return nil, err
	}
	resp := &Response{
		Request:   j.Req,
		Key:       key,
		Cells:     len(j.Plan.Cells),
		CacheHits: cacheHits,
		ElapsedMS: elapsedMS,
	}
	for _, t := range tables {
		resp.Tables = append(resp.Tables, Table{Title: t.Title, Text: t.Format(), CSV: t.CSV()})
	}
	if j.Req.Kind == KindTune {
		res, err := bench.AnalyzeTune(tables[0])
		if err != nil {
			return nil, err
		}
		resp.Analysis = res.Format()
	}
	return resp, nil
}

// Execute compiles and runs a request on a bench Runner — the CLI path.
// The server schedules cells itself (with singleflight and fairness) but
// produces the same Response from the same Job, which is what makes a CLI
// run and a server query for one experiment byte-identical.
func Execute(ctx context.Context, r *bench.Runner, req Request) (*Response, error) {
	buildStart := nowMS()
	j, err := Build(req)
	if err != nil {
		return nil, err
	}
	start := nowMS()
	tables, err := r.RunPlan(ctx, j.FigID, j.Plan, j.opts)
	if err != nil {
		return nil, err
	}
	execMS := nowMS() - start
	encStart := nowMS()
	resp, err := NewResponse(j, tables, 0, nowMS()-start)
	if err != nil {
		return nil, err
	}
	// The CLI path observes the stages it owns: request compilation, plan
	// execution, and response encoding. Units match the server's (µs).
	resp.Stages = []Stage{
		{Name: "decode", US: (start - buildStart) * 1e3},
		{Name: "execute", US: execMS * 1e3},
		{Name: "encode", US: (nowMS() - encStart) * 1e3},
	}
	return resp, nil
}

// tuneConfig builds the tune request's transport configuration exactly as
// pipmcoll-tune's flags always have.
func tuneConfig(t *Tune) mpi.Config {
	cfg := mpi.DefaultConfig()
	if t.QueueBWGBs > 0 {
		cfg.Fabric.QueueBandwidth = t.QueueBWGBs * 1e9
	}
	if t.LinkBWGBs > 0 {
		cfg.Fabric.LinkBandwidth = t.LinkBWGBs * 1e9
	}
	return cfg
}

// nowMS is wall time in float milliseconds since an arbitrary origin.
func nowMS() float64 { return float64(time.Now().UnixNano()) / 1e6 }
