// Package query is the unified experiment-request API shared by every
// front end: the one-shot CLIs (pipmcoll-bench, pipmcoll-tune,
// pipmcoll-report) and the pipmcoll-serve HTTP service. A Request names an
// experiment — a registered figure, an ad-hoc what-if cell (topology x
// library x collective x payload x optional fault plan), or a tuning
// ladder — plus the measurement options, in one typed struct with a
// canonical JSON encoding.
//
// The defining property is cache convergence: a Request compiles (Build)
// to exactly the (figure ID, cell key, Opts) triples the bench runner has
// always hashed into its content-addressed result cache, so the same
// experiment requested from any front end shares one cache entry and
// produces byte-identical tables. Canonical encodings round-trip:
// decode(encode(r)) derives the same cell addresses as r.
package query

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/libs"
	"repro/internal/nums"
	"repro/internal/stats"
)

// Request kinds. An empty Kind is inferred from which payload field is set.
const (
	KindFigure = "figure" // run one registered figure
	KindCell   = "cell"   // run one ad-hoc what-if measurement point
	KindTune   = "tune"   // run the switch-point tuning ladder
)

// Request describes one experiment. Exactly one of Figure, Cell, or Tune
// is set, matching Kind. The struct's JSON field order is the canonical
// encoding (see Canonical).
type Request struct {
	Kind   string `json:"kind"`
	Figure string `json:"figure,omitempty"`
	Cell   *Cell  `json:"cell,omitempty"`
	Tune   *Tune  `json:"tune,omitempty"`
	Opts   Opts   `json:"opts"`
	// TimeoutMS bounds how long the executor may spend on this request
	// (0 = no deadline). It is transport policy, not experiment identity:
	// two requests differing only in TimeoutMS are the same experiment,
	// so Normalize strips it and it never reaches the canonical encoding
	// or the cache addresses. The serve layer reads it before Build (the
	// X-Timeout-Ms header takes precedence when both are set).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Opts mirrors bench.Opts: measurement scale and repetition counts.
type Opts struct {
	Full   bool `json:"full,omitempty"`
	Warmup int  `json:"warmup"`
	Iters  int  `json:"iters"`
}

// Bench converts to the bench harness's option struct (no normalization;
// Build applies bench's defaulting rules).
func (o Opts) Bench() bench.Opts { return bench.Opts{Full: o.Full, Warmup: o.Warmup, Iters: o.Iters} }

// Cell is one what-if measurement point: which library runs which
// collective on which cluster shape with what payload, optionally under a
// deterministic fault plan.
type Cell struct {
	Library    string      `json:"library"`
	Collective string      `json:"collective"`
	Nodes      int         `json:"nodes"`
	PPN        int         `json:"ppn"`
	Bytes      int         `json:"bytes"`
	Fault      *fault.Spec `json:"fault,omitempty"`
}

// Tune asks for the PiP-MColl switch-point ladder on a cluster shape,
// optionally overriding the fabric calibration the way pipmcoll-tune's
// flags always have.
type Tune struct {
	Nodes int `json:"nodes"`
	PPN   int `json:"ppn"`
	// QueueBWGBs / LinkBWGBs override the per-queue DMA and node link
	// bandwidths in GB/s (0 = library default).
	QueueBWGBs float64 `json:"queue_bw_gbs,omitempty"`
	LinkBWGBs  float64 `json:"link_bw_gbs,omitempty"`
}

// Normalize validates the request and returns it with Kind inferred and
// Opts defaulted — the form Canonical encodes and Build compiles. Two
// requests meaning the same experiment normalize identically.
func (r Request) Normalize() (Request, error) {
	set := 0
	if r.Figure != "" {
		set++
		if r.Kind == "" {
			r.Kind = KindFigure
		}
	}
	if r.Cell != nil {
		set++
		if r.Kind == "" {
			r.Kind = KindCell
		}
	}
	if r.Tune != nil {
		set++
		if r.Kind == "" {
			r.Kind = KindTune
		}
	}
	if set != 1 {
		return r, fmt.Errorf("query: exactly one of figure, cell, tune must be set (got %d)", set)
	}
	if r.TimeoutMS < 0 {
		return r, fmt.Errorf("query: negative timeout_ms %d", r.TimeoutMS)
	}
	// The deadline is transport policy: strip it so the canonical encoding
	// (and every content address derived from it) is timeout-independent.
	r.TimeoutMS = 0
	o := r.Opts.Bench().WithDefaults()
	r.Opts = Opts{Full: o.Full, Warmup: o.Warmup, Iters: o.Iters}
	switch r.Kind {
	case KindFigure:
		if _, err := bench.Lookup(r.Figure); err != nil {
			return r, err
		}
	case KindCell:
		if r.Cell == nil {
			return r, fmt.Errorf("query: kind %q without cell payload", r.Kind)
		}
		if _, err := r.Cell.spec(r.Opts); err != nil {
			return r, err
		}
		if r.Cell.Fault != nil {
			if _, err := fault.New(*r.Cell.Fault); err != nil {
				return r, err
			}
		}
	case KindTune:
		if r.Tune == nil {
			return r, fmt.Errorf("query: kind %q without tune payload", r.Kind)
		}
		if r.Tune.Nodes < 1 || r.Tune.PPN < 1 {
			return r, fmt.Errorf("query: bad tune shape %dx%d", r.Tune.Nodes, r.Tune.PPN)
		}
		if r.Tune.QueueBWGBs < 0 || r.Tune.LinkBWGBs < 0 {
			return r, fmt.Errorf("query: negative bandwidth override")
		}
	default:
		return r, fmt.Errorf("query: unknown kind %q", r.Kind)
	}
	return r, nil
}

// spec compiles the cell payload into a bench.Spec (validated by bench).
func (c *Cell) spec(o Opts) (bench.Spec, error) {
	lib, err := libs.ByName(c.Library)
	if err != nil {
		return bench.Spec{}, err
	}
	op := bench.Op(c.Collective)
	switch op {
	case bench.OpScatter, bench.OpAllgather, bench.OpAllreduce:
	default:
		return bench.Spec{}, fmt.Errorf("query: unknown collective %q (scatter, allgather, allreduce)", c.Collective)
	}
	if op == bench.OpAllreduce && c.Bytes%nums.F64Size != 0 {
		return bench.Spec{}, fmt.Errorf("query: allreduce payload %dB not a float64 vector", c.Bytes)
	}
	if c.Nodes < 1 || c.PPN < 1 {
		return bench.Spec{}, fmt.Errorf("query: bad shape %dx%d", c.Nodes, c.PPN)
	}
	if c.Bytes <= 0 {
		return bench.Spec{}, fmt.Errorf("query: bad payload %dB", c.Bytes)
	}
	return bench.Spec{Lib: lib, Op: op, Nodes: c.Nodes, PPN: c.PPN, Bytes: c.Bytes,
		Warmup: o.Warmup, Iters: o.Iters}, nil
}

// Canonical returns the request's canonical JSON encoding: the normalized
// request marshalled with fixed field order. Equal experiments produce
// equal bytes, so the encoding is a stable wire format and a valid
// dedupe/cache key.
func (r Request) Canonical() ([]byte, error) {
	n, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Key returns the hex SHA-256 of the canonical encoding — the
// request-level content address used for logging and request dedupe.
func (r Request) Key() (string, error) {
	c, err := r.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.Sum256(c)
	return hex.EncodeToString(h[:]), nil
}

// Job is a compiled request: the cache namespace, the decomposed cell
// plan, and the normalized options — everything an executor (the bench
// Runner or the serve scheduler) needs. A Job's plan is single-use: its
// tables are filled by exactly one execution, so build a fresh Job per
// run.
type Job struct {
	Req   Request // normalized
	FigID string
	Plan  *bench.Plan
	opts  bench.Opts
}

// Build compiles a request into a runnable Job.
func Build(req Request) (*Job, error) {
	n, err := req.Normalize()
	if err != nil {
		return nil, err
	}
	j := &Job{Req: n, opts: n.Opts.Bench()}
	switch n.Kind {
	case KindFigure:
		fig, err := bench.Lookup(n.Figure)
		if err != nil {
			return nil, err
		}
		j.FigID = fig.ID
		j.Plan = fig.Cells(j.opts)
	case KindCell:
		spec, err := n.Cell.spec(n.Opts)
		if err != nil {
			return nil, err
		}
		plan, err := bench.WhatIf{Spec: spec, Fault: n.Cell.Fault}.Plan()
		if err != nil {
			return nil, err
		}
		j.FigID = bench.WhatIfFigureID
		j.Plan = plan
	case KindTune:
		j.FigID = bench.TuneFigureID
		j.Plan = bench.TunePlan(tuneConfig(n.Tune), n.Tune.Nodes, n.Tune.PPN, j.opts)
	default:
		return nil, fmt.Errorf("query: unknown kind %q", n.Kind)
	}
	return j, nil
}

// Opts returns the job's normalized bench options.
func (j *Job) Opts() bench.Opts { return j.opts }

// CellKeys lists the plan's cell keys in declaration order.
func (j *Job) CellKeys() []string {
	keys := make([]string, len(j.Plan.Cells))
	for i, c := range j.Plan.Cells {
		keys[i] = c.Key
	}
	return keys
}

// Addresses lists the content address of every cell in declaration order —
// the exact on-disk names the bench cache uses, shared across front ends.
func (j *Job) Addresses() []string {
	addrs := make([]string, len(j.Plan.Cells))
	for i, c := range j.Plan.Cells {
		addrs[i] = bench.CellAddress(j.FigID, c.Key, j.opts)
	}
	return addrs
}

// Assemble routes collected per-cell values into the job's tables in
// declaration order and applies the plan's Finish hook — the same
// reassembly Runner.RunPlan performs, exposed for executors that schedule
// cells themselves (the serve worker pool).
func (j *Job) Assemble(results [][]bench.Value) []*stats.Table {
	for _, vals := range results {
		for _, v := range vals {
			j.Plan.Tables[v.Table].Set(v.Row, v.Col, v.V)
		}
	}
	tables := j.Plan.Tables
	if j.Plan.Finish != nil {
		tables = j.Plan.Finish(tables)
	}
	return tables
}
