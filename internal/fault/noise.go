package fault

import "repro/internal/simtime"

// RankNoise is one rank's mutable cursor over the plan's noise generators.
// The plan itself is immutable and shared; each simulated rank owns a
// RankNoise and bills due detours against its virtual clock (lazy billing:
// the rank charges accumulated noise when it next enters an MPI operation,
// which is when stolen CPU time becomes visible to the collective).
//
// Detours land on the rank's *compute* timeline — virtual time minus the
// noise already billed — matching how a real OS interrupts a process per
// unit of scheduled time. This is also what keeps billing stable: stolen
// time cannot itself breed new detours, so amplitudes at or above the
// period (stragglers losing most of their CPU) stay well-defined instead
// of feeding back into runaway clocks.
//
// The detour sequence of a generator is a pure function of (seed,
// generator index, rank, detour ordinal), so how often Due is polled
// changes nothing about when detours land or how much they cost.
type RankNoise struct {
	plan   *Plan
	rank   int
	billed simtime.Duration // total noise charged so far
	cur    []noiseCursor
}

type noiseCursor struct {
	gen  int          // index into plan.spec.Noise
	n    uint64       // ordinal of the next detour
	next simtime.Time // compute-timeline instant of the next detour
}

// NewRankNoise builds the cursor for a rank, or returns nil if no generator
// affects it — callers treat a nil cursor as "no noise" at zero cost.
func (p *Plan) NewRankNoise(rank int) *RankNoise {
	if p == nil || !p.HasNoise(rank) {
		return nil
	}
	rn := &RankNoise{plan: p, rank: rank}
	for g, n := range p.spec.Noise {
		if !n.affects(rank) {
			continue
		}
		c := noiseCursor{gen: g}
		c.next = n.From + simtime.Time(p.interval(g, rank, 0, n))
		rn.cur = append(rn.cur, c)
	}
	return rn
}

// Due drains every detour that came due by virtual time now and returns the
// total CPU time stolen plus the number of detours. The caller is expected
// to advance the rank's clock by the returned extra, which is what keeps
// repeated polling consistent: detours are compared against the compute
// timeline (now minus everything already billed), so a detour is billed
// exactly once no matter the polling cadence. A nil receiver is a free
// no-op. The From/Until windows of a generator are likewise on the compute
// timeline.
func (rn *RankNoise) Due(now simtime.Time) (extra simtime.Duration, detours int) {
	if rn == nil {
		return 0, 0
	}
	progress := now.Add(-rn.billed)
	for i := range rn.cur {
		c := &rn.cur[i]
		n := rn.plan.spec.Noise[c.gen]
		for c.next <= progress {
			if n.Until != 0 && c.next >= n.Until {
				// Generator expired; park the cursor far in the future.
				c.next = simtime.Time(int64(1) << 62)
				break
			}
			extra += rn.plan.amplitude(c.gen, rn.rank, c.n, n)
			detours++
			c.n++
			c.next += simtime.Time(rn.plan.interval(c.gen, rn.rank, c.n, n))
		}
	}
	rn.billed += extra
	return extra, detours
}

// interval returns the jittered gap before detour ordinal n.
func (p *Plan) interval(gen, rank int, n uint64, spec Noise) simtime.Duration {
	return jitter(spec.Period, spec.Jitter, p.u01(2, uint64(gen), uint64(rank), n))
}

// amplitude returns the jittered CPU cost of detour ordinal n.
func (p *Plan) amplitude(gen, rank int, n uint64, spec Noise) simtime.Duration {
	return jitter(spec.Amplitude, spec.Jitter, p.u01(3, uint64(gen), uint64(rank), n))
}

// jitter scales base by 1 + j*(2u-1), i.e. uniformly within ±j, clamped to
// stay positive.
func jitter(base simtime.Duration, j float64, u float64) simtime.Duration {
	if j == 0 {
		return base
	}
	d := simtime.Duration(float64(base) * (1 + j*(2*u-1)))
	if d < 1 {
		d = 1
	}
	return d
}
