package fault

import (
	"math"
	"strings"
	"testing"

	"repro/internal/simtime"
)

func TestValidate(t *testing.T) {
	bad := []Spec{
		{Degrade: []LinkDegrade{{Node: -2, BandwidthScale: 1, OverheadScale: 1}}},
		{Degrade: []LinkDegrade{{BandwidthScale: 0, OverheadScale: 1}}},
		{Degrade: []LinkDegrade{{BandwidthScale: 1.5, OverheadScale: 1}}},
		{Degrade: []LinkDegrade{{BandwidthScale: 1, OverheadScale: 0.5}}},
		{Degrade: []LinkDegrade{{BandwidthScale: 1, OverheadScale: 1, From: 10, Until: 10}}},
		{Loss: Loss{DropRate: -0.1}},
		{Loss: Loss{DropRate: 1.1}},
		{Loss: Loss{CorruptRate: 2}},
		{Loss: Loss{DropRate: 0.6, CorruptRate: 0.6}},
		{Loss: Loss{DropRate: 0.1, RTO: -1}},
		{Loss: Loss{DropRate: 0.1, MaxAttempts: -1}},
		{Noise: []Noise{{Amplitude: 0, Period: simtime.Microsecond}}},
		{Noise: []Noise{{Amplitude: simtime.Microsecond, Period: 0}}},
		{Noise: []Noise{{Amplitude: simtime.Microsecond, Period: simtime.Microsecond, Jitter: 2}}},
		{Stalls: []QueueStall{{Node: -1, Duration: simtime.Microsecond}}},
		{Stalls: []QueueStall{{Duration: 0}}},
		// NaN sails through ordered comparisons, so finiteness must be
		// checked explicitly.
		{Loss: Loss{DropRate: math.NaN()}},
		{Loss: Loss{CorruptRate: math.Inf(1)}},
		{Degrade: []LinkDegrade{{BandwidthScale: math.NaN(), OverheadScale: 1}}},
		{Noise: []Noise{{Amplitude: simtime.Microsecond, Period: simtime.Microsecond, Jitter: math.NaN()}}},
	}
	for i, s := range bad {
		if _, err := New(s); err == nil {
			t.Errorf("spec %d: expected validation error, got nil", i)
		}
	}
	good := Spec{
		Seed:    7,
		Degrade: []LinkDegrade{{Node: -1, BandwidthScale: 0.25, OverheadScale: 2, From: 0, Until: simtime.Time(simtime.Millisecond)}},
		Loss:    Loss{DropRate: 0.05, CorruptRate: 0.01},
		Noise:   []Noise{{Amplitude: 5 * simtime.Microsecond, Period: 100 * simtime.Microsecond, Jitter: 0.5}},
		Stalls:  []QueueStall{{Node: 1, Queue: 0, From: simtime.Time(10 * simtime.Microsecond), Duration: 20 * simtime.Microsecond}},
	}
	if _, err := New(good); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestLossDefaults(t *testing.T) {
	p := MustNew(Spec{Loss: Loss{DropRate: 0.1}})
	if p.RTO() != DefaultRTO {
		t.Errorf("RTO = %v, want default %v", p.RTO(), DefaultRTO)
	}
	if p.MaxAttempts() != DefaultMaxAttempts {
		t.Errorf("MaxAttempts = %d, want default %d", p.MaxAttempts(), DefaultMaxAttempts)
	}
	if !p.LossEnabled() {
		t.Error("LossEnabled = false with DropRate 0.1")
	}
	if MustNew(Spec{}).LossEnabled() {
		t.Error("empty plan reports loss enabled")
	}
}

// TestEagerOutcomeDeterministic pins that decisions depend only on (seed,
// src, seq, attempt) — not on call order or the clock inside the window.
func TestEagerOutcomeDeterministic(t *testing.T) {
	p := MustNew(Spec{Seed: 42, Loss: Loss{DropRate: 0.3, CorruptRate: 0.1}})
	q := MustNew(Spec{Seed: 42, Loss: Loss{DropRate: 0.3, CorruptRate: 0.1}})
	for src := 0; src < 4; src++ {
		for seq := uint64(0); seq < 50; seq++ {
			a := p.EagerOutcome(src, seq, 0, 0)
			b := q.EagerOutcome(src, seq, 0, simtime.Time(simtime.Microsecond))
			if a != b {
				t.Fatalf("outcome differs across identical plans: src=%d seq=%d: %v vs %v", src, seq, a, b)
			}
		}
	}
}

// TestEagerOutcomeRates checks the hash actually realizes the configured
// probabilities (law of large numbers; generous tolerance).
func TestEagerOutcomeRates(t *testing.T) {
	p := MustNew(Spec{Seed: 1, Loss: Loss{DropRate: 0.2, CorruptRate: 0.1, MaxAttempts: 1000}})
	const n = 20000
	var drops, corrupts int
	for seq := uint64(0); seq < n; seq++ {
		switch p.EagerOutcome(3, seq, 0, 0) {
		case Dropped:
			drops++
		case Corrupted:
			corrupts++
		}
	}
	if f := float64(drops) / n; f < 0.18 || f > 0.22 {
		t.Errorf("drop frequency %.3f, want ~0.20", f)
	}
	if f := float64(corrupts) / n; f < 0.08 || f > 0.12 {
		t.Errorf("corrupt frequency %.3f, want ~0.10", f)
	}
}

// TestFinalAttemptDelivered pins the no-wedge guarantee: the last permitted
// attempt is always delivered regardless of rates.
func TestFinalAttemptDelivered(t *testing.T) {
	p := MustNew(Spec{Loss: Loss{DropRate: 1, MaxAttempts: 4}})
	for seq := uint64(0); seq < 100; seq++ {
		if got := p.EagerOutcome(0, seq, 3, 0); got != Delivered {
			t.Fatalf("attempt 3 (last of 4) = %v, want delivered", got)
		}
		if got := p.EagerOutcome(0, seq, 0, 0); got != Dropped {
			t.Fatalf("attempt 0 with DropRate 1 = %v, want dropped", got)
		}
	}
}

func TestLossWindow(t *testing.T) {
	p := MustNew(Spec{Loss: Loss{DropRate: 1, MaxAttempts: 10, From: 100, Until: 200}})
	if got := p.EagerOutcome(0, 0, 0, 50); got != Delivered {
		t.Errorf("before window: %v, want delivered", got)
	}
	if got := p.EagerOutcome(0, 0, 0, 150); got != Dropped {
		t.Errorf("inside window: %v, want dropped", got)
	}
	if got := p.EagerOutcome(0, 0, 0, 200); got != Delivered {
		t.Errorf("after window: %v, want delivered", got)
	}
}

func TestBackoff(t *testing.T) {
	p := MustNew(Spec{Loss: Loss{DropRate: 0.5, RTO: simtime.Microsecond}})
	if got := p.Backoff(0); got != simtime.Microsecond {
		t.Errorf("Backoff(0) = %v, want %v", got, simtime.Microsecond)
	}
	if got := p.Backoff(3); got != 8*simtime.Microsecond {
		t.Errorf("Backoff(3) = %v, want %v", got, 8*simtime.Microsecond)
	}
	if got, cap := p.Backoff(40), p.Backoff(MaxBackoffShift); got != cap {
		t.Errorf("Backoff(40) = %v, want capped %v", got, cap)
	}
}

func TestLinkScale(t *testing.T) {
	p := MustNew(Spec{Degrade: []LinkDegrade{
		{Node: 1, From: 100, Until: 200, BandwidthScale: 0.5, OverheadScale: 2},
		{Node: -1, From: 150, Until: 0, BandwidthScale: 0.8, OverheadScale: 1.5},
	}})
	if bw, ov := p.LinkScale(0, 50); bw != 1 || ov != 1 {
		t.Errorf("unaffected: got %g,%g want 1,1", bw, ov)
	}
	if p.Degraded(0, 50) {
		t.Error("Degraded true outside any window")
	}
	if bw, ov := p.LinkScale(1, 120); bw != 0.5 || ov != 2 {
		t.Errorf("node window: got %g,%g want 0.5,2", bw, ov)
	}
	if bw, ov := p.LinkScale(1, 160); bw != 0.5*0.8 || ov != 2*1.5 {
		t.Errorf("overlap composes: got %g,%g want %g,%g", bw, ov, 0.5*0.8, 2*1.5)
	}
	// Open-ended all-node window applies everywhere after From.
	if bw, _ := p.LinkScale(3, simtime.Time(simtime.Millisecond)); bw != 0.8 {
		t.Errorf("open-ended window: bw %g, want 0.8", bw)
	}
	if !p.Degraded(3, simtime.Time(simtime.Millisecond)) {
		t.Error("Degraded false inside open-ended window")
	}
}

func TestStallClear(t *testing.T) {
	p := MustNew(Spec{Stalls: []QueueStall{
		{Node: 0, Queue: 1, From: 100, Duration: 50},
		{Node: 0, Queue: 1, From: 150, Duration: 25}, // abuts the first
		{Node: 2, Queue: 0, From: 0, Duration: 10},
	}})
	if got := p.StallClear(0, 1, 90); got != 90 {
		t.Errorf("before stall: %v, want 90", got)
	}
	if got := p.StallClear(0, 1, 120); got != 175 {
		t.Errorf("chained stalls: %v, want 175", got)
	}
	if got := p.StallClear(0, 0, 120); got != 120 {
		t.Errorf("other queue: %v, want 120", got)
	}
	if got := p.StallClear(2, 0, 5); got != 10 {
		t.Errorf("node 2: %v, want 10", got)
	}
}

func TestHasNoise(t *testing.T) {
	p := MustNew(Spec{Noise: []Noise{{Ranks: []int{1, 3}, Amplitude: simtime.Microsecond, Period: simtime.Microsecond}}})
	if p.HasNoise(0) || !p.HasNoise(1) || p.HasNoise(2) || !p.HasNoise(3) {
		t.Error("HasNoise rank selection wrong")
	}
	all := MustNew(Spec{Noise: []Noise{{Amplitude: simtime.Microsecond, Period: simtime.Microsecond}}})
	if !all.HasNoise(17) {
		t.Error("nil Ranks should affect every rank")
	}
	if MustNew(Spec{}).HasNoise(0) {
		t.Error("empty plan has noise")
	}
}

// TestStringStable pins that the fingerprint is deterministic and mentions
// every mechanism (it doubles as the bench cache-key fragment).
func TestStringStable(t *testing.T) {
	spec := Spec{
		Seed:    9,
		Degrade: []LinkDegrade{{Node: 0, BandwidthScale: 0.5, OverheadScale: 1}},
		Loss:    Loss{DropRate: 0.01},
		Noise:   []Noise{{Amplitude: simtime.Microsecond, Period: simtime.Millisecond}},
		Stalls:  []QueueStall{{Node: 0, Queue: 0, From: 1, Duration: 2}},
	}
	a, b := MustNew(spec).String(), MustNew(spec).String()
	if a != b {
		t.Fatalf("String not deterministic:\n%s\n%s", a, b)
	}
	for _, want := range []string{"seed=9", "degrade(", "loss(", "noise(", "stall("} {
		if !strings.Contains(a, want) {
			t.Errorf("fingerprint %q missing %q", a, want)
		}
	}
	if MustNew(Spec{}).String() == a {
		t.Error("distinct specs share a fingerprint")
	}
}

func TestU01Distribution(t *testing.T) {
	p := MustNew(Spec{Seed: 123})
	var sum float64
	const n = 10000
	for i := uint64(0); i < n; i++ {
		u := p.u01(2, i)
		if u < 0 || u >= 1 {
			t.Fatalf("u01 out of range: %g", u)
		}
		sum += u
	}
	if mean := sum / n; mean < 0.48 || mean > 0.52 {
		t.Errorf("u01 mean %.3f, want ~0.5", mean)
	}
}

// TestKillOp pins the op-boundary kill spec: validation, the per-rank
// accessor, HasKills, and the fingerprint.
func TestKillOp(t *testing.T) {
	spec := Spec{KillOps: []KillOp{{Rank: 1, Op: 3}, {Rank: 2, Op: 0, After: true}}}
	p := MustNew(spec)
	if !p.HasKills() {
		t.Error("HasKills false with KillOps present")
	}
	if op, after, ok := p.OpKill(1); !ok || op != 3 || after {
		t.Errorf("OpKill(1) = (%d,%v,%v), want (3,false,true)", op, after, ok)
	}
	if op, after, ok := p.OpKill(2); !ok || op != 0 || !after {
		t.Errorf("OpKill(2) = (%d,%v,%v), want (0,true,true)", op, after, ok)
	}
	if _, _, ok := p.OpKill(0); ok {
		t.Error("OpKill(0) matched with no entry")
	}
	var nilPlan *Plan
	if nilPlan.HasKills() {
		t.Error("nil plan HasKills")
	}
	if _, _, ok := nilPlan.OpKill(1); ok {
		t.Error("nil plan OpKill matched")
	}
	s := p.String()
	for _, want := range []string{"kill(r1#op3)", "kill(r2#op0+)"} {
		if !strings.Contains(s, want) {
			t.Errorf("fingerprint %q missing %q", s, want)
		}
	}
	for _, bad := range []Spec{
		{KillOps: []KillOp{{Rank: -1, Op: 0}}},
		{KillOps: []KillOp{{Rank: 0, Op: -1}}},
		{KillOps: []KillOp{{Rank: 0, Op: 0}, {Rank: 0, Op: 2}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted bad spec %+v", bad)
		}
	}
}
