// Package fault is the deterministic chaos layer of the simulated cluster:
// a seeded, declarative description of adverse conditions — degraded links,
// lost or corrupted eager messages, OS noise and straggler detours, NIC
// injection-queue stalls — compiled into a Plan the transport layers consult
// on their hot paths.
//
// Determinism is the design constraint everything else bends around. Every
// probabilistic decision is a pure function of (seed, structured identifiers,
// attempt number) through a splitmix64-style hash: no wall clock, no shared
// global PRNG whose draw order could couple unrelated subsystems. Two runs
// with the same seed and spec therefore make byte-identical decisions, which
// is what lets chaos experiments ride the bench registry's result cache and
// lets a failure found at drop-rate 0.01/seed 7 be replayed exactly.
//
// The package deliberately depends only on simtime. The fabric, mpi and obs
// layers import fault — never the reverse — so a nil *Plan keeps every
// fault-free run byte-identical to a build without the fault layer at all.
package fault

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/simtime"
)

// Spec declares a chaos scenario. The zero value is a no-op plan (every
// mechanism disabled); mechanisms are enabled independently by filling their
// fields. Compile it with New.
type Spec struct {
	// Seed keys every probabilistic decision in the plan. Two plans with
	// equal specs (including the seed) behave identically.
	Seed uint64
	// Degrade lists link-degradation windows.
	Degrade []LinkDegrade
	// Loss configures eager message loss and corruption.
	Loss Loss
	// Noise lists OS-noise / straggler detour generators; multiple entries
	// compose (a global noise floor plus a per-rank straggler, say).
	Noise []Noise
	// Stalls lists transient NIC injection-queue freezes.
	Stalls []QueueStall
	// KillRanks lists permanent fail-stop rank deaths (ULFM-style failures
	// the MPI layer detects and reports as typed errors).
	KillRanks []KillRank
	// KillNodes lists permanent whole-node deaths: every rank on the node
	// dies at the same instant, modelling a node crash or power loss.
	KillNodes []KillNode
	// KillOps lists schedule-indexed permanent rank deaths: the rank dies at
	// (or just after) its Nth MPI operation boundary rather than at a wall of
	// virtual time. Op-indexed kills are stable across schedule perturbations
	// — rank 2's third Send is its third Send under every interleaving — which
	// is what lets the model checker enumerate kill timings exhaustively.
	KillOps []KillOp
}

// KillRank declares the permanent fail-stop death of one world rank at a
// virtual time: from At on, the simulated process stops dispatching at its
// next operation boundary and its fabric/shared-memory endpoints drop all
// traffic. Unlike every other fault in this package, a kill is not ridden
// out transparently — it surfaces as a typed mpi.ProcFailedError that the
// application recovers from (see internal/recover).
type KillRank struct {
	Rank int
	At   simtime.Time
}

// KillNode declares the simultaneous permanent death of every rank on one
// node at a virtual time.
type KillNode struct {
	Node int
	At   simtime.Time
}

// KillOp declares the permanent fail-stop death of one world rank pinned to
// an operation boundary: the rank's 0-based Op-th MPI operation entry. With
// After false the rank dies *at* the boundary — it never enters the op. With
// After true it arms the kill on entry and dies at its next boundary or,
// if it parks inside the op first, mid-wait (delivered by the failure
// detector's quiescence machinery) — covering mid-round deaths inside
// Agree/Shrink and long collectives.
type KillOp struct {
	Rank  int
	Op    int
	After bool
}

// LinkDegrade scales one node's link parameters inside a virtual-time
// window, modelling a flapping cable, a misbehaving switch port, or thermal
// throttling: bandwidth multiplies by BandwidthScale (0 < s <= 1) and the
// per-message link overhead by OverheadScale (>= 1).
type LinkDegrade struct {
	Node           int          // -1 applies to every node
	From           simtime.Time // window start (inclusive)
	Until          simtime.Time // window end (exclusive); 0 = open-ended
	BandwidthScale float64
	OverheadScale  float64
}

func (d LinkDegrade) contains(node int, at simtime.Time) bool {
	if d.Node != -1 && d.Node != node {
		return false
	}
	return at >= d.From && (d.Until == 0 || at < d.Until)
}

// Loss configures probabilistic loss and corruption of eager fabric
// messages (rendezvous payloads already handshake and are treated as
// reliable). A lost message vanishes after clearing the sender's link; a
// corrupted one additionally wastes the receive-side resources before its
// checksum fails. Both are recovered by the fabric's ack/timeout/retransmit
// path (see fabric.SendTraced): the sender retransmits after an
// exponentially backed-off timeout until an attempt survives.
type Loss struct {
	// DropRate is the per-attempt probability a message is lost in the
	// fabric (0..1).
	DropRate float64
	// CorruptRate is the per-attempt probability a message arrives
	// corrupted and is discarded by the receiver's checksum (0..1).
	CorruptRate float64
	// RTO is the base retransmission timeout; attempt k waits RTO<<k
	// (capped at MaxBackoffShift doublings). Zero defaults to 50 µs.
	RTO simtime.Duration
	// MaxAttempts bounds the retransmission loop; the final attempt is
	// forced through so a plan can never wedge a send forever. Zero
	// defaults to 8.
	MaxAttempts int
	// From/Until bound the window in which loss applies (Until 0 =
	// open-ended).
	From, Until simtime.Time
}

// Default loss-recovery constants.
const (
	DefaultRTO         = 50 * simtime.Microsecond
	DefaultMaxAttempts = 8
	MaxBackoffShift    = 6
)

func (l Loss) enabled() bool { return l.DropRate > 0 || l.CorruptRate > 0 }

func (l Loss) active(at simtime.Time) bool {
	return at >= l.From && (l.Until == 0 || at < l.Until)
}

// Noise generates OS-noise detours: at roughly every Period of virtual
// time, an affected rank loses Amplitude of CPU to the operating system
// (daemon wakeups, page reclaim, interrupts). Jitter (0..1) perturbs both
// the interval and the amplitude multiplicatively, so detours neither
// align across ranks nor resonate with collective phases. A Noise entry
// with a small Ranks list and a large Amplitude models a straggler.
type Noise struct {
	// Ranks selects the affected world ranks; nil means every rank.
	Ranks []int
	// Amplitude is the mean CPU time stolen per detour.
	Amplitude simtime.Duration
	// Period is the mean virtual-time interval between detours.
	Period simtime.Duration
	// Jitter is the fractional (0..1) perturbation of interval and
	// amplitude.
	Jitter float64
	// From/Until bound the window in which this generator fires (Until 0
	// = open-ended).
	From, Until simtime.Time
}

func (n Noise) affects(rank int) bool {
	if n.Ranks == nil {
		return true
	}
	for _, r := range n.Ranks {
		if r == rank {
			return true
		}
	}
	return false
}

// QueueStall freezes one NIC injection queue for a window: sends arriving
// at (Node, Queue) during [From, From+Duration) wait until the window ends
// before entering the queue, modelling a transient NIC/firmware hiccup or a
// PCIe credit stall.
type QueueStall struct {
	Node, Queue int
	From        simtime.Time
	Duration    simtime.Duration
}

// Validate reports an error for a nonsensical spec.
func (s Spec) Validate() error {
	for i, d := range s.Degrade {
		switch {
		case d.Node < -1:
			return fmt.Errorf("fault: degrade[%d] bad node %d", i, d.Node)
		case !finite(d.BandwidthScale) || !finite(d.OverheadScale):
			return fmt.Errorf("fault: degrade[%d] non-finite scale: %+v", i, d)
		case d.BandwidthScale <= 0 || d.BandwidthScale > 1:
			return fmt.Errorf("fault: degrade[%d] bandwidth scale %g outside (0,1]", i, d.BandwidthScale)
		case d.OverheadScale < 1:
			return fmt.Errorf("fault: degrade[%d] overhead scale %g < 1", i, d.OverheadScale)
		case d.Until != 0 && d.Until <= d.From:
			return fmt.Errorf("fault: degrade[%d] empty window [%v,%v)", i, d.From, d.Until)
		}
	}
	l := s.Loss
	switch {
	case !finite(l.DropRate) || !finite(l.CorruptRate):
		return fmt.Errorf("fault: non-finite loss rate: %+v", l)
	case l.DropRate < 0 || l.DropRate > 1:
		return fmt.Errorf("fault: drop rate %g outside [0,1]", l.DropRate)
	case l.CorruptRate < 0 || l.CorruptRate > 1:
		return fmt.Errorf("fault: corrupt rate %g outside [0,1]", l.CorruptRate)
	case l.DropRate+l.CorruptRate > 1:
		return fmt.Errorf("fault: drop+corrupt rate %g exceeds 1", l.DropRate+l.CorruptRate)
	case l.RTO < 0:
		return fmt.Errorf("fault: negative RTO %v", l.RTO)
	case l.MaxAttempts < 0:
		return fmt.Errorf("fault: negative max attempts %d", l.MaxAttempts)
	case l.Until != 0 && l.Until <= l.From:
		return fmt.Errorf("fault: loss empty window [%v,%v)", l.From, l.Until)
	}
	for i, n := range s.Noise {
		switch {
		case n.Amplitude <= 0:
			return fmt.Errorf("fault: noise[%d] non-positive amplitude %v", i, n.Amplitude)
		case n.Period <= 0:
			return fmt.Errorf("fault: noise[%d] non-positive period %v", i, n.Period)
		case !finite(n.Jitter):
			return fmt.Errorf("fault: noise[%d] non-finite jitter: %+v", i, n)
		case n.Jitter < 0 || n.Jitter > 1:
			return fmt.Errorf("fault: noise[%d] jitter %g outside [0,1]", i, n.Jitter)
		case n.Until != 0 && n.Until <= n.From:
			return fmt.Errorf("fault: noise[%d] empty window [%v,%v)", i, n.From, n.Until)
		}
	}
	for i, st := range s.Stalls {
		switch {
		case st.Node < 0 || st.Queue < 0:
			return fmt.Errorf("fault: stall[%d] bad endpoint (%d,%d)", i, st.Node, st.Queue)
		case st.Duration <= 0:
			return fmt.Errorf("fault: stall[%d] non-positive duration %v", i, st.Duration)
		}
	}
	for i, k := range s.KillRanks {
		switch {
		case k.Rank < 0:
			return fmt.Errorf("fault: kill-rank[%d] bad rank %d", i, k.Rank)
		case k.At < 0:
			return fmt.Errorf("fault: kill-rank[%d] negative time %v", i, k.At)
		}
	}
	for i, k := range s.KillNodes {
		switch {
		case k.Node < 0:
			return fmt.Errorf("fault: kill-node[%d] bad node %d", i, k.Node)
		case k.At < 0:
			return fmt.Errorf("fault: kill-node[%d] negative time %v", i, k.At)
		}
	}
	seenOp := map[int]bool{}
	for i, k := range s.KillOps {
		switch {
		case k.Rank < 0:
			return fmt.Errorf("fault: kill-op[%d] bad rank %d", i, k.Rank)
		case k.Op < 0:
			return fmt.Errorf("fault: kill-op[%d] negative op index %d", i, k.Op)
		case seenOp[k.Rank]:
			return fmt.Errorf("fault: kill-op[%d] duplicate rank %d", i, k.Rank)
		}
		seenOp[k.Rank] = true
	}
	return nil
}

// Plan is a compiled, immutable fault spec. It is stateless — all mutable
// fault bookkeeping (send sequence numbers, per-rank noise cursors) lives in
// the consuming layers — so one Plan may be shared by many worlds, and a
// world re-run from the same Plan behaves identically.
type Plan struct {
	spec Spec
	loss Loss // defaults applied
}

// New compiles and validates a spec.
func New(spec Spec) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{spec: spec, loss: spec.Loss}
	if p.loss.RTO == 0 {
		p.loss.RTO = DefaultRTO
	}
	if p.loss.MaxAttempts == 0 {
		p.loss.MaxAttempts = DefaultMaxAttempts
	}
	return p, nil
}

// MustNew is New that panics on error, for scenarios that are program
// constants.
func MustNew(spec Spec) *Plan {
	p, err := New(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Spec returns the plan's (defaults-applied loss) specification.
func (p *Plan) Spec() Spec {
	s := p.spec
	s.Loss = p.loss
	return s
}

// Seed returns the plan's PRNG seed.
func (p *Plan) Seed() uint64 { return p.spec.Seed }

// String renders a deterministic fingerprint of the plan — stable across
// processes, so it can serve as a cache-key fragment (the bench harness
// formats mpi.Config with %+v, which routes through this method).
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault{seed=%d", p.spec.Seed)
	for _, d := range p.spec.Degrade {
		fmt.Fprintf(&b, " degrade(n%d %v..%v bw*%g ov*%g)", d.Node, d.From, d.Until, d.BandwidthScale, d.OverheadScale)
	}
	if p.loss.enabled() {
		fmt.Fprintf(&b, " loss(drop=%g corrupt=%g rto=%v max=%d %v..%v)",
			p.loss.DropRate, p.loss.CorruptRate, p.loss.RTO, p.loss.MaxAttempts, p.loss.From, p.loss.Until)
	}
	for _, n := range p.spec.Noise {
		fmt.Fprintf(&b, " noise(ranks=%v amp=%v period=%v jitter=%g %v..%v)",
			n.Ranks, n.Amplitude, n.Period, n.Jitter, n.From, n.Until)
	}
	for _, st := range p.spec.Stalls {
		fmt.Fprintf(&b, " stall(n%dq%d %v+%v)", st.Node, st.Queue, st.From, st.Duration)
	}
	for _, k := range p.spec.KillRanks {
		fmt.Fprintf(&b, " kill(r%d@%v)", k.Rank, k.At)
	}
	for _, k := range p.spec.KillNodes {
		fmt.Fprintf(&b, " kill(n%d@%v)", k.Node, k.At)
	}
	for _, k := range p.spec.KillOps {
		mark := ""
		if k.After {
			mark = "+"
		}
		fmt.Fprintf(&b, " kill(r%d#op%d%s)", k.Rank, k.Op, mark)
	}
	b.WriteString("}")
	return b.String()
}

// LossEnabled reports whether the plan can drop or corrupt eager messages
// (and therefore whether the fabric must run its ack/retransmit machinery).
func (p *Plan) LossEnabled() bool { return p.loss.enabled() }

// RTO returns the base retransmission timeout.
func (p *Plan) RTO() simtime.Duration { return p.loss.RTO }

// MaxAttempts returns the send-attempt bound (>= 1).
func (p *Plan) MaxAttempts() int { return p.loss.MaxAttempts }

// Backoff returns the retransmission delay after failed attempt number
// attempt (0-based): RTO doubled per attempt, capped at MaxBackoffShift
// doublings.
func (p *Plan) Backoff(attempt int) simtime.Duration {
	if attempt > MaxBackoffShift {
		attempt = MaxBackoffShift
	}
	return p.loss.RTO << attempt
}

// Outcome is the fate of one eager send attempt.
type Outcome int

// Attempt fates.
const (
	Delivered Outcome = iota
	Dropped           // lost in the fabric: no receive-side work
	Corrupted         // delivered but fails the receiver's checksum
)

// String returns the outcome's name.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	case Corrupted:
		return "corrupted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// EagerOutcome decides the fate of attempt number attempt (0-based) of the
// seq-th eager send from source endpoint index src, issued at virtual time
// at. The decision hashes (seed, src, seq, attempt) — not the clock — so it
// is independent of simulation execution order; at only gates the loss
// window. The final permitted attempt is always delivered.
func (p *Plan) EagerOutcome(src int, seq uint64, attempt int, at simtime.Time) Outcome {
	if !p.loss.enabled() || !p.loss.active(at) {
		return Delivered
	}
	if attempt >= p.loss.MaxAttempts-1 {
		return Delivered
	}
	u := p.u01(1, uint64(src), seq, uint64(attempt))
	switch {
	case u < p.loss.DropRate:
		return Dropped
	case u < p.loss.DropRate+p.loss.CorruptRate:
		return Corrupted
	default:
		return Delivered
	}
}

// LinkScale returns the (bandwidth, overhead) multipliers in effect for a
// node's link at virtual time at. With no active degradation window both
// are exactly 1, and multiplying by them is a float64 no-op — fault-free
// timings stay bit-identical.
func (p *Plan) LinkScale(node int, at simtime.Time) (bw, overhead float64) {
	bw, overhead = 1, 1
	for _, d := range p.spec.Degrade {
		if d.contains(node, at) {
			bw *= d.BandwidthScale
			overhead *= d.OverheadScale
		}
	}
	return bw, overhead
}

// Degraded reports whether any degradation window covers the node at time
// at, letting the fabric skip the scaling arithmetic entirely on the common
// path.
func (p *Plan) Degraded(node int, at simtime.Time) bool {
	for _, d := range p.spec.Degrade {
		if d.contains(node, at) {
			return true
		}
	}
	return false
}

// StallClear returns the earliest time at or after at when the (node,
// queue) injection queue is unfrozen. With no covering stall window it
// returns at unchanged.
func (p *Plan) StallClear(node, queue int, at simtime.Time) simtime.Time {
	t := at
	// Windows may abut or nest; iterate to a fixed point so a send that
	// clears one stall into the mouth of another waits both out.
	for changed := true; changed; {
		changed = false
		for _, st := range p.spec.Stalls {
			end := st.From.Add(st.Duration)
			if st.Node == node && st.Queue == queue && t >= st.From && t < end {
				t = end
				changed = true
			}
		}
	}
	return t
}

// HasKills reports whether the plan declares any permanent rank or node
// deaths. Nil-safe: a nil plan kills nobody.
func (p *Plan) HasKills() bool {
	return p != nil && (len(p.spec.KillRanks) > 0 || len(p.spec.KillNodes) > 0 ||
		len(p.spec.KillOps) > 0)
}

// OpKill returns the op-boundary kill declared for the given world rank, if
// any. Nil-safe: a nil plan kills nobody. At most one entry per rank exists
// (Validate rejects duplicates).
func (p *Plan) OpKill(rank int) (op int, after bool, ok bool) {
	if p == nil {
		return 0, false, false
	}
	for _, k := range p.spec.KillOps {
		if k.Rank == rank {
			return k.Op, k.After, true
		}
	}
	return 0, false, false
}

// KillTime returns the earliest virtual time at which the given (world rank,
// node) pair dies, considering both rank-level and node-level kills, and
// whether any kill applies at all. Nil-safe: a nil plan kills nobody.
func (p *Plan) KillTime(rank, node int) (simtime.Time, bool) {
	if p == nil {
		return 0, false
	}
	var at simtime.Time
	found := false
	take := func(t simtime.Time) {
		if !found || t < at {
			at, found = t, true
		}
	}
	for _, k := range p.spec.KillRanks {
		if k.Rank == rank {
			take(k.At)
		}
	}
	for _, k := range p.spec.KillNodes {
		if k.Node == node {
			take(k.At)
		}
	}
	return at, found
}

// HasNoise reports whether any noise generator could affect rank.
func (p *Plan) HasNoise(rank int) bool {
	for _, n := range p.spec.Noise {
		if n.affects(rank) {
			return true
		}
	}
	return false
}

// --- seeded decision hashing --------------------------------------------

// mix is the splitmix64 finalizer: a fast, well-distributed 64-bit hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const golden = 0x9e3779b97f4a7c15

// u01 hashes the seed and a decision's structured identifiers into a
// uniform float64 in [0, 1). The leading stream id separates decision
// families (loss vs noise) so they never correlate.
func (p *Plan) u01(stream uint64, ids ...uint64) float64 {
	h := mix(p.spec.Seed ^ stream*golden)
	for _, id := range ids {
		h = mix(h ^ (id+1)*golden)
	}
	return float64(h>>11) / float64(1<<53)
}

// finite reports whether f is a usable probability-ish float (not NaN/Inf);
// jitter and degrade scales are also funneled through it by Validate.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
