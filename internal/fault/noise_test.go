package fault

import (
	"testing"

	"repro/internal/simtime"
)

func noisyPlan() *Plan {
	return MustNew(Spec{Seed: 5, Noise: []Noise{{
		Amplitude: 2 * simtime.Microsecond,
		Period:    10 * simtime.Microsecond,
		Jitter:    0.5,
	}}})
}

func TestRankNoiseNil(t *testing.T) {
	var p *Plan
	if rn := p.NewRankNoise(0); rn != nil {
		t.Fatal("nil plan produced a cursor")
	}
	var rn *RankNoise
	if d, n := rn.Due(simtime.Time(simtime.Millisecond)); d != 0 || n != 0 {
		t.Fatalf("nil cursor billed %v/%d", d, n)
	}
	unaffected := MustNew(Spec{Noise: []Noise{{Ranks: []int{1}, Amplitude: 1, Period: 1}}})
	if rn := unaffected.NewRankNoise(0); rn != nil {
		t.Fatal("unaffected rank got a cursor")
	}
}

// TestRankNoisePollIndependent pins lazy billing: a rank that performs a
// fixed amount of compute bills the identical noise whether it polls once
// at the end or after every small step — provided it advances its clock by
// what Due returns, as the runtime does.
func TestRankNoisePollIndependent(t *testing.T) {
	p := noisyPlan()
	work := simtime.Duration(simtime.Millisecond)
	simulate := func(steps int) (simtime.Duration, int) {
		rn := p.NewRankNoise(2)
		var clock simtime.Time
		var billed simtime.Duration
		var detours int
		step := work / simtime.Duration(steps)
		for i := 0; i < steps; i++ {
			clock = clock.Add(step)
			d, n := rn.Due(clock)
			clock = clock.Add(d)
			billed += d
			detours += n
		}
		return billed, detours
	}
	cd, cn := simulate(1)
	fd, fn := simulate(137)
	if cd != fd || cn != fn {
		t.Fatalf("billing depends on poll cadence: coarse %v/%d, fine %v/%d", cd, cn, fd, fn)
	}
	if cn == 0 {
		t.Fatal("no detours over 1ms of compute with 10µs period")
	}
	// Roughly work/period detours, each roughly Amplitude.
	if cn < 50 || cn > 200 {
		t.Errorf("detour count %d implausible for 10µs period over 1ms", cn)
	}
	mean := cd / simtime.Duration(cn)
	if mean < simtime.Microsecond || mean > 3*simtime.Microsecond {
		t.Errorf("mean detour %v, want ~2µs", mean)
	}
}

// TestRankNoiseStableAboveUnityFraction pins the straggler regime: a plan
// stealing more time per period than the period itself (noise fraction > 1)
// bills a finite, proportional amount instead of feeding back into a
// runaway clock — detours land on the compute timeline, so billed noise
// cannot breed further detours.
func TestRankNoiseStableAboveUnityFraction(t *testing.T) {
	p := MustNew(Spec{Noise: []Noise{{
		Amplitude: 20 * simtime.Microsecond,
		Period:    5 * simtime.Microsecond,
	}}})
	rn := p.NewRankNoise(0)
	work := simtime.Time(100 * simtime.Microsecond)
	extra, detours := rn.Due(work)
	if detours != 20 {
		t.Errorf("detours = %d, want 20 (100µs of compute / 5µs period)", detours)
	}
	if want := simtime.Duration(20 * 20 * simtime.Microsecond); extra != want {
		t.Errorf("billed %v, want %v", extra, want)
	}
	// After billing, the clock sits at work+extra; no further compute means
	// no further detours.
	if d, n := rn.Due(work.Add(extra)); d != 0 || n != 0 {
		t.Errorf("billed noise bred %v/%d of new detours", d, n)
	}
}

// TestRankNoiseDeterministic pins that two cursors for the same (plan,
// rank) replay identically while distinct ranks decorrelate.
func TestRankNoiseDeterministic(t *testing.T) {
	p := noisyPlan()
	a, _ := p.NewRankNoise(1).Due(simtime.Time(simtime.Millisecond))
	b, _ := p.NewRankNoise(1).Due(simtime.Time(simtime.Millisecond))
	if a != b {
		t.Fatalf("same rank differs: %v vs %v", a, b)
	}
	c, _ := p.NewRankNoise(3).Due(simtime.Time(simtime.Millisecond))
	if a == c {
		t.Error("distinct ranks billed identical noise (suspicious correlation)")
	}
}

func TestRankNoiseWindow(t *testing.T) {
	p := MustNew(Spec{Noise: []Noise{{
		Amplitude: simtime.Microsecond,
		Period:    10 * simtime.Microsecond,
		From:      simtime.Time(100 * simtime.Microsecond),
		Until:     simtime.Time(200 * simtime.Microsecond),
	}}})
	rn := p.NewRankNoise(0)
	if d, _ := rn.Due(simtime.Time(99 * simtime.Microsecond)); d != 0 {
		t.Errorf("billed %v before window", d)
	}
	mid, midN := rn.Due(simtime.Time(200 * simtime.Microsecond))
	if midN == 0 {
		t.Fatal("no detours inside window")
	}
	if d, n := rn.Due(simtime.Time(simtime.Second)); d != 0 || n != 0 {
		t.Errorf("billed %v/%d after window expired", d, n)
	}
	_ = mid
}
