//go:build race

// Package race exposes whether the race detector instruments this build.
// Allocation-ceiling tests consult it: the detector's shadow bookkeeping
// changes heap behaviour, so exact allocs/op pins only hold on plain builds.
package race

// Enabled reports whether the binary was built with -race.
const Enabled = true
