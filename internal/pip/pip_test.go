package pip

import (
	"fmt"
	"testing"

	"repro/internal/shm"
	"repro/internal/simtime"
)

func newEnv(ppn int) *NodeEnv {
	return NewNodeEnv(0, ppn, shm.MustNewNode(shm.DefaultParams()))
}

func TestPostReadDeliversPayload(t *testing.T) {
	env := newEnv(2)
	e := simtime.NewEngine()
	buf := []byte("shared")
	e.Spawn("poster", func(p *simtime.Proc) {
		p.Advance(10 * simtime.Nanosecond)
		env.Post(p, 1, 0, 0, buf)
	})
	e.Spawn("reader", func(p *simtime.Proc) {
		got := env.Read(p, 1, 0, 0).([]byte)
		if string(got) != "shared" {
			t.Errorf("payload = %q", got)
		}
		if p.Now() < simtime.Time(10*simtime.Nanosecond) {
			t.Errorf("reader resumed at %v, before post", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBeforePostWaits(t *testing.T) {
	env := newEnv(2)
	e := simtime.NewEngine()
	var readerTime simtime.Time
	e.Spawn("reader", func(p *simtime.Proc) {
		env.Read(p, 7, 1, 3)
		readerTime = p.Now()
	})
	e.Spawn("poster", func(p *simtime.Proc) {
		p.Advance(simtime.Microsecond)
		env.Post(p, 7, 1, 3, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	postCost := env.Shm().Params().PostCost
	if want := simtime.Time(simtime.Microsecond + postCost); readerTime != want {
		t.Fatalf("reader woke at %v, want %v", readerTime, want)
	}
}

func TestEpochIsolation(t *testing.T) {
	env := newEnv(1)
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		env.Post(p, 1, 0, 0, "epoch1")
		env.Post(p, 2, 0, 0, "epoch2") // same (local, slot), new epoch: no clash
		if got := env.Read(p, 1, 0, 0); got != "epoch1" {
			t.Errorf("epoch1 read = %v", got)
		}
		if got := env.Read(p, 2, 0, 0); got != "epoch2" {
			t.Errorf("epoch2 read = %v", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDoublePostSameCellPanics(t *testing.T) {
	env := newEnv(1)
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		env.Post(p, 1, 0, 0, nil)
		env.Post(p, 1, 0, 0, nil)
	})
	if err := e.Run(); err == nil {
		t.Fatal("double post not detected")
	}
}

func TestCounterSharedAcrossRanks(t *testing.T) {
	env := newEnv(4)
	e := simtime.NewEngine()
	var rootSaw simtime.Time
	e.Spawn("root", func(p *simtime.Proc) {
		env.Counter(3, 0, 0).WaitGE(p, 3)
		rootSaw = p.Now()
	})
	for i := 1; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("peer%d", i), func(p *simtime.Proc) {
			p.Advance(simtime.Duration(i*100) * simtime.Nanosecond)
			env.Counter(3, 0, 0).Add(p, 1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := simtime.Time(300 * simtime.Nanosecond); rootSaw != want {
		t.Fatalf("root resumed at %v, want %v (last peer arrival)", rootSaw, want)
	}
}

func TestBarrierCoordinatesNode(t *testing.T) {
	env := newEnv(3)
	e := simtime.NewEngine()
	var ends [3]simtime.Time
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprintf("r%d", i), func(p *simtime.Proc) {
			p.Advance(simtime.Duration(i) * simtime.Microsecond)
			env.Barrier(p)
			ends[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ends {
		if want := simtime.Time(2 * simtime.Microsecond); ends[i] != want {
			t.Fatalf("rank %d left barrier at %v, want %v", i, ends[i], want)
		}
	}
}

func TestEndEpochFreesCells(t *testing.T) {
	env := newEnv(2)
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		env.Post(p, 1, 0, 0, nil)
		env.Post(p, 1, 0, 1, nil)
		env.Counter(1, 0, 9).Add(p, 1)
		env.Post(p, 2, 0, 0, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Cells() != 4 {
		t.Fatalf("cells = %d, want 4", env.Cells())
	}
	env.EndEpoch(1)
	if env.Cells() != 1 {
		t.Fatalf("cells after EndEpoch = %d, want 1", env.Cells())
	}
}

func TestBadLocalRankPanics(t *testing.T) {
	env := newEnv(2)
	e := simtime.NewEngine()
	e.Spawn("p", func(p *simtime.Proc) {
		env.Post(p, 1, 2, 0, nil) // local 2 on a 2-rank node
	})
	if err := e.Run(); err == nil {
		t.Fatal("bad local rank accepted")
	}
}

func TestNewNodeEnvPanicsOnBadPPN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewNodeEnv(0, 0, shm.MustNewNode(shm.DefaultParams()))
}

func TestAccessors(t *testing.T) {
	env := NewNodeEnv(7, 3, shm.MustNewNode(shm.DefaultParams()))
	if env.Node() != 7 || env.PPN() != 3 || env.Shm() == nil {
		t.Fatal("accessors wrong")
	}
}
