// Package pip models the Process-in-Process execution environment of Hori et
// al. (HPDC'18), the substrate PiP-MColl is built on: all MPI processes of a
// node are loaded into one virtual address space, so any process can read or
// write any peer's buffers directly in userspace, with no system calls.
//
// In this reproduction the shared address space is literal — all simulated
// processes are goroutines in one Go address space — so "posting an address"
// really does hand a peer a reference it can copy through. What the package
// adds over raw shared memory is the PiP programming model the paper's
// algorithms use:
//
//   - a posting board: one-shot publish/subscribe cells, keyed by
//     (epoch, local rank, slot), through which processes expose buffer
//     addresses and completion flags to node peers;
//   - arrival counters for "wait until k peers have copied" patterns;
//   - a node barrier;
//   - epoch management so that back-to-back collectives reuse no cells.
//
// Costs: posting charges the small store-and-publish cost; waiting is free
// (captured by virtual-time ordering); copies and reductions are charged by
// the shm layer the algorithms call through.
package pip

import (
	"fmt"

	"repro/internal/shm"
	"repro/internal/simtime"
)

// NodeEnv is the PiP environment of one node: the shared-memory cost domain
// plus the posting board and node barrier. One NodeEnv is shared by all
// local ranks of a node.
type NodeEnv struct {
	node    int
	ppn     int
	shmNode *shm.Node
	barrier *simtime.Barrier
	flags   map[cellKey]*simtime.Flag
	counts  map[cellKey]*simtime.Counter
}

// cellKey addresses one posting-board cell. Epoch isolates successive
// collective invocations; local is the posting rank for flags (or any
// algorithm-chosen owner for counters); slot distinguishes multiple cells of
// one owner within an epoch.
type cellKey struct {
	epoch uint64
	local int
	slot  int
}

// NewNodeEnv creates the PiP environment for a node with ppn local ranks.
func NewNodeEnv(node, ppn int, shmNode *shm.Node) *NodeEnv {
	if ppn < 1 {
		panic(fmt.Sprintf("pip: node %d with %d ranks", node, ppn))
	}
	return &NodeEnv{
		node:    node,
		ppn:     ppn,
		shmNode: shmNode,
		barrier: simtime.NewBarrier(ppn),
		flags:   make(map[cellKey]*simtime.Flag),
		counts:  make(map[cellKey]*simtime.Counter),
	}
}

// Node returns the node id this environment belongs to.
func (e *NodeEnv) Node() int { return e.node }

// PPN returns the number of local ranks sharing this environment.
func (e *NodeEnv) PPN() int { return e.ppn }

// Shm returns the node's shared-memory cost domain.
func (e *NodeEnv) Shm() *shm.Node { return e.shmNode }

// Barrier blocks until all local ranks of the node have arrived.
func (e *NodeEnv) Barrier(p *simtime.Proc) { e.barrier.Wait(p) }

// flag returns the (lazily created) flag cell for a key, so that waiters may
// arrive before the poster.
func (e *NodeEnv) flag(k cellKey) *simtime.Flag {
	f, ok := e.flags[k]
	if !ok {
		f = &simtime.Flag{}
		e.flags[k] = f
	}
	return f
}

// Post publishes payload (typically a buffer reference) on the calling
// rank's cell (epoch, local, slot), charging the PiP post cost. Each cell
// may be posted once per epoch.
func (e *NodeEnv) Post(p *simtime.Proc, epoch uint64, local, slot int, payload any) {
	e.checkLocal(local)
	e.shmNode.Post(p)
	e.flag(cellKey{epoch, local, slot}).Set(p, payload)
}

// Read blocks until the cell (epoch, local, slot) has been posted and
// returns its payload. Reading a posted address is a plain load in the PiP
// space; no cost beyond the virtual-time wait is charged.
func (e *NodeEnv) Read(p *simtime.Proc, epoch uint64, local, slot int) any {
	e.checkLocal(local)
	return e.flag(cellKey{epoch, local, slot}).Wait(p)
}

// Counter returns the shared arrival counter for (epoch, owner, slot),
// creating it on first use. Algorithms use it for "P-1 peers have copied
// out" completion tracking.
func (e *NodeEnv) Counter(epoch uint64, owner, slot int) *simtime.Counter {
	e.checkLocal(owner)
	k := cellKey{epoch, owner, slot}
	c, ok := e.counts[k]
	if !ok {
		c = &simtime.Counter{}
		e.counts[k] = c
	}
	return c
}

// EndEpoch discards every cell of the given epoch. Call it from exactly one
// local rank after a synchronization point that proves no rank will touch
// the epoch again (typically the collective's closing barrier).
func (e *NodeEnv) EndEpoch(epoch uint64) {
	for k := range e.flags {
		if k.epoch == epoch {
			delete(e.flags, k)
		}
	}
	for k := range e.counts {
		if k.epoch == epoch {
			delete(e.counts, k)
		}
	}
}

// Cells reports the number of live board cells, for leak tests.
func (e *NodeEnv) Cells() int { return len(e.flags) + len(e.counts) }

func (e *NodeEnv) checkLocal(local int) {
	if local < 0 || local >= e.ppn {
		panic(fmt.Sprintf("pip: local rank %d outside node of %d", local, e.ppn))
	}
}
