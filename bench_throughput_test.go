package repro

import (
	"testing"

	"repro/internal/bench"
)

// BenchmarkSimThroughput measures the discrete-event engine itself on the
// standard throughput worlds: wall ns per dispatched event, events per
// second, and heap allocations per event. One b.N iteration is one full
// world run (build + workload), so -benchtime=1x gives the smoke-test
// numbers and larger -benchtime averages out scheduler noise. The recorded
// trajectory lives in BENCH_throughput.json (regenerate with
// `pipmcoll-bench -throughput`).
func BenchmarkSimThroughput(b *testing.B) {
	for _, tw := range bench.ThroughputWorlds() {
		tw := tw
		b.Run(tw.Name, func(b *testing.B) {
			var res bench.ThroughputResult
			for i := 0; i < b.N; i++ {
				r, err := bench.RunThroughput(tw)
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(res.NsPerEvent, "ns/event")
			b.ReportMetric(res.EventsPerSec, "events/s")
			b.ReportMetric(res.AllocsPerEvent, "allocs/event")
			b.ReportMetric(res.VirtualUs, "virtual-us")
		})
	}
}
