// Command pipmcoll-bench regenerates the paper's evaluation figures on the
// simulated cluster and prints them as aligned tables (and optionally CSV
// files). Each figure corresponds to one driver in internal/bench; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded runs.
//
// Usage:
//
//	pipmcoll-bench [-fig 1,6,9] [-full] [-iters 3] [-warmup 2] [-csv DIR]
//
// Without -fig, every figure runs in order. Quick mode (default) uses small
// cluster shapes that finish in seconds; -full uses the largest shapes that
// fit in memory (see the bench package comment).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	figList := flag.String("fig", "", "comma-separated figure ids (default: all)")
	full := flag.Bool("full", false, "use paper-scale cluster shapes where memory allows")
	iters := flag.Int("iters", 3, "measured iterations per point")
	warmup := flag.Int("warmup", 2, "warm-up iterations per point")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	ext := flag.Bool("ext", false, "also run the extension experiments E1-E4 (bcast/gather/reduce/alltoall)")
	abl := flag.Bool("ablation", false, "also run the ablation experiments A1-A3")
	list := flag.Bool("list", false, "list available figures and exit")
	flag.Parse()

	if *list {
		fmt.Println("paper figures:")
		for _, f := range bench.Figures() {
			fmt.Printf("  %-3s %s\n", f.ID, f.Title)
		}
		fmt.Println("extensions:")
		for _, f := range bench.ExtFigures() {
			fmt.Printf("  %-3s %s\n", f.ID, f.Title)
		}
		fmt.Println("ablations and sensitivity:")
		for _, f := range append(bench.AblationFigures(), bench.SensitivityFigures()...) {
			fmt.Printf("  %-3s %s\n", f.ID, f.Title)
		}
		return
	}

	opts := bench.Opts{Full: *full, Warmup: *warmup, Iters: *iters}

	var figs []bench.Figure
	if *figList == "" {
		figs = bench.Figures()
		if *ext {
			figs = append(figs, bench.ExtFigures()...)
		}
		if *abl {
			figs = append(figs, bench.AblationFigures()...)
		}
	} else {
		for _, id := range strings.Split(*figList, ",") {
			f, err := bench.FigureByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			figs = append(figs, f)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("PiP-MColl benchmark harness (%s mode, %d warm-up + %d measured iterations)\n\n",
		mode, *warmup, *iters)

	for _, f := range figs {
		start := time.Now()
		tables := f.Run(opts)
		fmt.Printf("=== Figure %s: %s  [%.1fs]\n\n", f.ID, f.Title, time.Since(start).Seconds())
		for i, t := range tables {
			fmt.Println(t.Format())
			if *csvDir != "" {
				name := fmt.Sprintf("fig%s_%d.csv", f.ID, i)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}
}
