// Command pipmcoll-bench regenerates the paper's evaluation figures on the
// simulated cluster and prints them as aligned tables (and optionally CSV
// files). Each figure is registered in internal/bench and decomposed into
// independent cells that are scheduled over a worker pool and cached on
// disk, so re-runs with unchanged inputs skip the simulation entirely; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded runs.
//
// Usage:
//
//	pipmcoll-bench [-fig 1,6,9] [-full] [-iters 3] [-warmup 2] [-csv DIR]
//	               [-parallel N] [-nocache] [-cache-dir DIR] [-replay]
//	               [-server http://host:8090] [-timeout-ms 0]
//	pipmcoll-bench -throughput [-throughput-out BENCH_throughput.json]
//	pipmcoll-bench -gate [-gate-baseline BENCH_throughput.json]
//	               [-gate-tolerance 0.15] [-gate-runs 3] [-gate-skip-wallclock]
//
// Without -fig, every paper figure runs in order; -ext, -ablation and
// -sensitivity add the other registry kinds. Quick mode (default) uses
// small cluster shapes that finish in seconds; -full uses the largest
// shapes that fit in memory (see the bench package comment).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/query"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipmcoll-bench:", err)
		os.Exit(1)
	}
}

// runThroughput measures the discrete-event engine itself (ns/event,
// events/s, allocs/event) on the standard world shapes and records the
// results for cross-PR tracking.
func runThroughput(out string) error {
	fmt.Printf("%-14s %8s %8s %12s %12s %14s %12s\n",
		"world", "ranks", "rounds", "events", "ns/event", "events/s", "allocs/event")
	var results []bench.ThroughputResult
	for _, tw := range bench.ThroughputWorlds() {
		res, err := bench.RunThroughput(tw)
		if err != nil {
			return fmt.Errorf("throughput world %s: %w", tw.Name, err)
		}
		// The replay variant of the same world: record one live run, then
		// measure the goroutine-free walk of its schedule.
		rres, err := bench.RunThroughputReplay(tw)
		if err != nil {
			return fmt.Errorf("throughput world %s replay: %w", tw.Name, err)
		}
		results = append(results, res, rres)
		for _, r := range []bench.ThroughputResult{res, rres} {
			fmt.Printf("%-14s %8d %8d %12d %12.1f %14.0f %12.4f\n",
				r.World, r.Ranks, r.Rounds, r.Events,
				r.NsPerEvent, r.EventsPerSec, r.AllocsPerEvent)
		}
	}
	if err := bench.WriteThroughputJSON(out, results); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	return nil
}

// runGate runs the throughput suite best-of-N and fails on regression
// against the recorded baseline — the CI bench gate (`make bench-gate`).
func runGate(baselinePath string, tol float64, runs int, skipWall bool) error {
	baseline, err := bench.ReadThroughputJSON(baselinePath)
	if err != nil {
		return err
	}
	fmt.Printf("throughput gate: baseline %s (%d worlds), best-of-%d, ns/event tolerance +%.0f%%\n",
		baselinePath, len(baseline.Worlds), runs, tol*100)
	fresh, err := bench.GateThroughput(baseline, bench.GateOpts{
		NsTolerance:   tol,
		Repeats:       runs,
		SkipWallClock: skipWall,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	for _, res := range fresh {
		fmt.Printf("gate %-8s fresh: %12.0f ns/event %14.0f events/s %8.3f allocs/event\n",
			res.World, res.NsPerEvent, res.EventsPerSec, res.AllocsPerEvent)
	}
	if err != nil {
		return err
	}
	fmt.Println("throughput gate: PASS")
	return nil
}

func run() error {
	figList := flag.String("fig", "", "comma-separated figure ids (default: all paper figures)")
	full := flag.Bool("full", false, "use paper-scale cluster shapes where memory allows")
	iters := flag.Int("iters", 3, "measured iterations per point")
	warmup := flag.Int("warmup", 2, "warm-up iterations per point")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	ext := flag.Bool("ext", false, "also run the extension experiments (E1-E5)")
	abl := flag.Bool("ablation", false, "also run the ablation experiments (A1-A3)")
	sens := flag.Bool("sensitivity", false, "also run the sensitivity experiments (S1-S4)")
	list := flag.Bool("list", false, "list available figures and exit")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "cells simulating concurrently (1 = serial)")
	nocache := flag.Bool("nocache", false, "bypass the on-disk result cache")
	cacheDir := flag.String("cache-dir", bench.DefaultCacheDir(), "result cache directory")
	statsDump := flag.Bool("stats", false, "dump harness metrics (cells, cache hits/misses, wall time, queue wait) after the run")
	replay := flag.Bool("replay", false, "memoize fault-free cell schedules: record each shape's event DAG once, replay repeats goroutine-free")
	throughput := flag.Bool("throughput", false, "run the simulator-throughput suite instead of figures")
	throughputOut := flag.String("throughput-out", "BENCH_throughput.json", "where -throughput writes its JSON report")
	gateRun := flag.Bool("gate", false, "run the throughput gate against -gate-baseline; exit nonzero on regression")
	gateBaseline := flag.String("gate-baseline", "BENCH_throughput.json", "baseline report the gate compares against")
	gateTol := flag.Float64("gate-tolerance", 0.15, "gate: allowed fractional ns/event regression (0.15 = +15%)")
	gateRuns := flag.Int("gate-runs", 3, "gate: repeats per world (best-of sheds host noise)")
	gateSkipWall := flag.Bool("gate-skip-wallclock", false, "gate: skip the ns/event comparison (alloc ceilings and virtual time still enforced)")
	server := flag.String("server", "", "run figures against a pipmcoll-serve URL instead of in-process (retries on shed load)")
	timeoutMS := flag.Int("timeout-ms", 0, "with -server: per-request deadline in milliseconds (0 = none)")
	flag.Parse()

	// Diagnostics (cache problems, failing cells) go to stderr as
	// structured lines; tables and results stay on stdout.
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *throughput {
		return runThroughput(*throughputOut)
	}
	if *gateRun {
		return runGate(*gateBaseline, *gateTol, *gateRuns, *gateSkipWall)
	}

	if *list {
		for _, k := range []bench.Kind{bench.KindPaper, bench.KindExtension, bench.KindAblation, bench.KindSensitivity} {
			fmt.Printf("%s:\n", k)
			for _, f := range bench.ByKind(k) {
				fmt.Printf("  %-3s %s\n", f.ID, f.Title)
			}
		}
		return nil
	}

	var figs []bench.Figure
	if *figList == "" {
		figs = bench.ByKind(bench.KindPaper)
		if *ext {
			figs = append(figs, bench.ByKind(bench.KindExtension)...)
		}
		if *abl {
			figs = append(figs, bench.ByKind(bench.KindAblation)...)
		}
		if *sens {
			figs = append(figs, bench.ByKind(bench.KindSensitivity)...)
		}
	} else {
		for _, id := range strings.Split(*figList, ",") {
			f, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			figs = append(figs, f)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	opts := bench.Opts{Full: *full, Warmup: *warmup, Iters: *iters}
	if *server != "" {
		return runRemote(*server, figs, opts, *timeoutMS, *csvDir, logger)
	}

	var cache *bench.Cache
	if !*nocache {
		c, err := bench.OpenCache(*cacheDir)
		if err != nil {
			logger.Warn("cache unavailable, continuing without", "dir", *cacheDir, "error", err)
		} else {
			cache = c
		}
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	if *parallel < 1 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("PiP-MColl benchmark harness (%s mode, %d warm-up + %d measured iterations, %d workers)\n\n",
		mode, *warmup, *iters, *parallel)

	var (
		curID    string
		figStart time.Time
	)
	reg := obs.NewRegistry()
	var memo *bench.ScheduleMemo
	if *replay {
		memo = bench.NewScheduleMemo()
		memo.Instrument(reg, "bench.replay")
		bench.EnableReplay(memo)
		defer bench.EnableReplay(nil)
	}
	runner := bench.NewRunner(bench.RunnerConfig{
		Parallel: *parallel,
		Cache:    cache,
		Metrics:  reg,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rfig %-3s %d/%d cells  %5.1fs", curID, done, total,
				time.Since(figStart).Seconds())
			if done == total {
				fmt.Fprint(os.Stderr, "\r\033[K")
			}
		},
	})

	var failed []string
	for _, f := range figs {
		curID, figStart = f.ID, time.Now()
		// Each figure is one request through the shared query API — the
		// same compilation path pipmcoll-serve uses, so the cache entries
		// written here are warm on the server and vice versa.
		resp, err := query.Execute(context.Background(), runner, query.Request{
			Figure: f.ID,
			Opts:   query.Opts{Full: opts.Full, Warmup: opts.Warmup, Iters: opts.Iters},
		})
		if err != nil {
			// A failing figure doesn't abort the run: report every failing
			// cell key, remember the figure, and keep regenerating the rest
			// so one bad cell can't hide other results (or other failures).
			failed = append(failed, f.ID)
			var ce *bench.CellErrors
			if errors.As(err, &ce) {
				logger.Error("figure cells failed", "figure", ce.Figure,
					"failed", len(ce.Cells), "total", ce.Total)
				for _, c := range ce.Cells {
					logger.Error("cell failed", "figure", ce.Figure, "cell", c.Key, "error", c.Err)
				}
			} else {
				logger.Error("figure failed", "figure", f.ID, "error", err)
			}
			continue
		}
		fmt.Printf("=== Figure %s: %s  [%.1fs]\n\n", f.ID, f.Title, time.Since(figStart).Seconds())
		for i, t := range resp.Tables {
			fmt.Println(t.Text)
			if *csvDir != "" {
				name := fmt.Sprintf("fig%s_%d.csv", f.ID, i)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(t.CSV), 0o644); err != nil {
					return fmt.Errorf("writing CSV: %w", err)
				}
			}
		}
	}
	if cache != nil {
		hits, misses := cache.Stats()
		fmt.Printf("cache: %d hits, %d misses (%s)\n", hits, misses, cache.Dir())
	}
	if memo != nil {
		st := memo.Stats()
		fmt.Printf("replay: %d schedules, %d hits, %d misses, %d fallbacks\n",
			st.Schedules, st.Hits, st.Misses, st.Fallbacks)
	}
	if *statsDump {
		fmt.Println()
		reg.Dump(os.Stdout)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d figure(s) had failing cells: %s", len(failed), strings.Join(failed, ", "))
	}
	return nil
}

// runRemote sends each figure as one query to a pipmcoll-serve instance,
// retrying shed load and drains with backoff, and prints the same tables
// the in-process path does. The server shares the content-addressed
// cache, so anything it has already computed comes back warm.
func runRemote(baseURL string, figs []bench.Figure, opts bench.Opts, timeoutMS int,
	csvDir string, logger *slog.Logger) error {
	cl := client.New(client.Config{BaseURL: baseURL, ClientID: "pipmcoll-bench"})
	fmt.Printf("PiP-MColl benchmark harness (remote %s, %d warm-up + %d measured iterations)\n\n",
		baseURL, opts.Warmup, opts.Iters)
	var failed []string
	for _, f := range figs {
		start := time.Now()
		resp, outcome, err := cl.Query(context.Background(), query.Request{
			Figure:    f.ID,
			Opts:      query.Opts{Full: opts.Full, Warmup: opts.Warmup, Iters: opts.Iters},
			TimeoutMS: timeoutMS,
		})
		if outcome.Retried > 0 {
			logger.Info("figure needed retries", "figure", f.ID,
				"attempts", len(outcome.Attempts), "shed", outcome.Shed)
		}
		if err != nil {
			failed = append(failed, f.ID)
			logger.Error("figure failed", "figure", f.ID,
				"attempts", len(outcome.Attempts), "error", err)
			continue
		}
		fmt.Printf("=== Figure %s: %s  [%.1fs, %d cache hits]\n\n",
			f.ID, f.Title, time.Since(start).Seconds(), resp.CacheHits)
		for i, t := range resp.Tables {
			fmt.Println(t.Text)
			if csvDir != "" {
				name := fmt.Sprintf("fig%s_%d.csv", f.ID, i)
				if err := os.WriteFile(filepath.Join(csvDir, name), []byte(t.CSV), 0o644); err != nil {
					return fmt.Errorf("writing CSV: %w", err)
				}
			}
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d figure(s) failed remotely: %s", len(failed), strings.Join(failed, ", "))
	}
	return nil
}
