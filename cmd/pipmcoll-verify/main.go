// Command pipmcoll-verify model-checks collectives on small worlds: it
// enumerates every scheduler interleaving (dispatch ties, wildcard match
// order, timeout races — with partial-order reduction pruning provably
// redundant reorderings) and asserts each one either matches the serial
// reference bit-exact or fails with a typed error. An exploration that
// finishes without truncation is a proof of schedule-independence on that
// world; every violation prints a canonical, replayable schedule
// certificate, delta-debugged to a 1-minimal counterexample.
//
// Usage:
//
//	pipmcoll-verify [-op all] [-nodes 2] [-ppn 2] [-bytes 64] [-elems 4]
//	                [-kills] [-budget 0] [-max-violations 16] [-naive] [-list]
//	pipmcoll-verify -op broken-allreduce -schedule 'mc1;t0/4,t0/3,t0/2,m1/2'
//
// -op names one program (or "all" for the barrier/bcast/allreduce core);
// -kills additionally sweeps every single-rank op-boundary kill timing of
// each program; -budget bounds the schedules per scenario (0 = exhaustive;
// a truncated exploration is reported as bounded, not a proof); -naive
// disables pruning (ground-truthing the reduction); -schedule replays a
// certificate against the named program and reports the verdict.
//
// Exit status: 0 when every exploration is clean (or a replayed schedule
// meets the contract), 1 when violations were found (or the replayed
// schedule reproduces one), 2 on usage or infrastructure errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/mc"
	"repro/internal/obs"
)

// programs is the verification catalogue: name -> family constructor.
var programs = []struct {
	name  string
	about string
	mk    func(nodes, ppn, bytes, elems int, kill *fault.KillOp) mc.Program
}{
	{"barrier", "dissemination barrier (liveness)",
		func(n, p, _, _ int, k *fault.KillOp) mc.Program { return mc.Barrier(n, p, k) }},
	{"bcast", "binomial-tree broadcast vs root bytes",
		func(n, p, b, _ int, k *fault.KillOp) mc.Program { return mc.Bcast(n, p, b, k) }},
	{"allreduce", "ring allreduce vs serial sum",
		func(n, p, _, e int, k *fault.KillOp) mc.Program { return mc.Allreduce(n, p, e, k) }},
	{"agree-shrink", "ULFM Agree/Shrink/Agree, survivors in lockstep",
		func(n, p, _, _ int, k *fault.KillOp) mc.Program { return mc.AgreeShrink(n, p, k) }},
	{"recover-allreduce", "shrink-and-retry allreduce vs sum over survivors",
		func(n, p, _, e int, k *fault.KillOp) mc.Program { return mc.RecoverAllreduce(n, p, e, k) }},
	{"broken-allreduce", "planted arrival-order bug (expected to be convicted)",
		func(n, p, _, e int, _ *fault.KillOp) mc.Program { return mc.BrokenAllreduce(n, p, e) }},
}

func main() {
	var (
		op       = flag.String("op", "all", "program to verify, or \"all\" for the barrier/bcast/allreduce core")
		nodes    = flag.Int("nodes", 2, "nodes in the verified world")
		ppn      = flag.Int("ppn", 2, "ranks per node")
		bytes    = flag.Int("bytes", 64, "bcast payload bytes")
		elems    = flag.Int("elems", 4, "allreduce elements per rank")
		kills    = flag.Bool("kills", false, "also sweep every single-rank op-boundary kill timing")
		budget   = flag.Int("budget", 0, "max schedules per scenario (0 = exhaustive)")
		maxViols = flag.Int("max-violations", 16, "stop each exploration after this many violations (0 = unlimited)")
		naive    = flag.Bool("naive", false, "disable partial-order reduction")
		schedule = flag.String("schedule", "", "replay this certificate against -op and report the verdict")
		list     = flag.Bool("list", false, "list programs and exit")
	)
	flag.Parse()

	if *list {
		for _, p := range programs {
			fmt.Printf("  %-18s %s\n", p.name, p.about)
		}
		return
	}

	if *schedule != "" {
		os.Exit(replay(*op, *nodes, *ppn, *bytes, *elems, *schedule))
	}

	var selected []func(*fault.KillOp) mc.Program
	var names []string
	for _, p := range programs {
		if *op == p.name || (*op == "all" && (p.name == "barrier" || p.name == "bcast" || p.name == "allreduce")) {
			p := p
			selected = append(selected, func(k *fault.KillOp) mc.Program {
				return p.mk(*nodes, *ppn, *bytes, *elems, k)
			})
			names = append(names, p.name)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "pipmcoll-verify: unknown program %q (try -list)\n", *op)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	opt := mc.Options{Naive: *naive, MaxSchedules: *budget, MaxViolations: *maxViols, Minimize: true, Metrics: reg}
	violations := 0
	bounded := false
	for i, mk := range selected {
		progs := []mc.Program{mk(nil)}
		if *kills {
			variants, err := mc.KillVariants(mk)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pipmcoll-verify: %s: %v\n", names[i], err)
				os.Exit(2)
			}
			progs = append(progs, variants...)
		}
		for _, prog := range progs {
			st, viols, err := mc.Explore(prog, opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pipmcoll-verify: %s: %v\n", prog.Name, err)
				os.Exit(2)
			}
			verdict := "proved"
			switch {
			case len(viols) > 0:
				verdict = "VIOLATED"
			case st.Truncated:
				verdict = "bounded"
				bounded = true
			}
			fmt.Printf("%-40s %-8s %6d schedules, %6d pruned\n", prog.Name, verdict, st.Schedules, st.Pruned)
			for _, v := range viols {
				violations++
				fmt.Printf("  violation: %v\n  certificate: %s\n", v.Err, v.Certificate)
				if v.Minimized != "" && v.Minimized != v.Certificate {
					fmt.Printf("  minimized:   %s\n", v.Minimized)
				}
			}
		}
	}
	fmt.Printf("total: %d schedules, %d pruned, %d violations\n",
		reg.Counter(obs.MetricMCSchedules).Value(),
		reg.Counter(obs.MetricMCPruned).Value(),
		reg.Counter(obs.MetricMCViolations).Value())
	if bounded {
		fmt.Println("note: at least one exploration hit -budget; bounded results are not proofs")
	}
	if violations > 0 {
		os.Exit(1)
	}
}

// replay re-executes one certificate against the named program family and
// reports the verdict: exit 0 when the schedule meets the contract, 1 when
// it reproduces a violation, 2 when the certificate cannot be replayed.
func replay(op string, nodes, ppn, bytes, elems int, cert string) int {
	if op == "all" {
		fmt.Fprintln(os.Stderr, "pipmcoll-verify: -schedule needs a concrete -op (try -list)")
		return 2
	}
	kill, err := mc.CertKill(cert)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipmcoll-verify: %v\n", err)
		return 2
	}
	for _, p := range programs {
		if p.name != op {
			continue
		}
		prog := p.mk(nodes, ppn, bytes, elems, kill)
		viol, err := mc.Replay(prog, cert)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipmcoll-verify: %v\n", err)
			return 2
		}
		if viol != nil {
			fmt.Printf("%s: schedule reproduces the violation:\n  %v\n", prog.Name, viol)
			return 1
		}
		fmt.Printf("%s: schedule meets the contract\n", prog.Name)
		return 0
	}
	fmt.Fprintf(os.Stderr, "pipmcoll-verify: unknown program %q (try -list)\n", op)
	return 2
}
