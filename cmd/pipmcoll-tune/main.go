// Command pipmcoll-tune measures PiP-MColl's small- and large-message
// algorithm variants across a size ladder on a chosen cluster shape and
// recommends the switch points (core.Tunables) for that configuration —
// the offline tuning stage a production MPI library ships with. The CLI is
// a thin front end over the shared query API (internal/query): it builds
// the same tune request pipmcoll-serve accepts, so ladder cells computed
// here are warm on the server and vice versa. The paper's 64 kB /
// 8k-count switches are Bebop's values; other fabrics move the crossovers
// (see EXPERIMENTS.md ablation A2).
//
// Usage:
//
//	pipmcoll-tune [-nodes 8] [-ppn 6] [-queue-bw GB/s] [-link-bw GB/s]
//	              [-parallel N] [-nocache] [-cache-dir DIR]
//	              [-server http://host:8090] [-timeout-ms 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/client"
	"repro/internal/query"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster nodes")
	ppn := flag.Int("ppn", 6, "processes per node")
	queueBW := flag.Float64("queue-bw", 0, "override per-queue DMA bandwidth (GB/s)")
	linkBW := flag.Float64("link-bw", 0, "override node link bandwidth (GB/s)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "cells simulating concurrently (1 = serial)")
	nocache := flag.Bool("nocache", false, "bypass the on-disk result cache")
	cacheDir := flag.String("cache-dir", bench.DefaultCacheDir(), "result cache directory")
	verbose := flag.Bool("v", false, "log run diagnostics (stage timings) to stderr")
	server := flag.String("server", "", "run the ladder against a pipmcoll-serve URL instead of in-process (retries on shed load)")
	timeoutMS := flag.Int("timeout-ms", 0, "with -server: per-request deadline in milliseconds (0 = none)")
	flag.Parse()

	// Diagnostics go to stderr as structured lines; stdout stays the
	// recommendation text.
	lvl := slog.LevelWarn
	if *verbose {
		lvl = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	req := query.Request{
		Tune: &query.Tune{Nodes: *nodes, PPN: *ppn, QueueBWGBs: *queueBW, LinkBWGBs: *linkBW},
		Opts: query.Opts{Warmup: 1, Iters: 2},
	}

	if *server != "" {
		req.TimeoutMS = *timeoutMS
		fmt.Printf("tuning PiP-MColl switch points on %dx%d (remote %s)\n\n", *nodes, *ppn, *server)
		cl := client.New(client.Config{BaseURL: *server, ClientID: "pipmcoll-tune"})
		resp, outcome, err := cl.Query(context.Background(), req)
		if outcome.Retried > 0 {
			logger.Info("tune needed retries", "attempts", len(outcome.Attempts), "shed", outcome.Shed)
		}
		if err != nil {
			logger.Error("tune failed", "attempts", len(outcome.Attempts), "error", err)
			os.Exit(1)
		}
		logStages(logger, resp)
		fmt.Print(resp.Analysis)
		return
	}

	var cache *bench.Cache
	if !*nocache {
		c, err := bench.OpenCache(*cacheDir)
		if err != nil {
			logger.Warn("cache unavailable, continuing without", "dir", *cacheDir, "error", err)
		} else {
			cache = c
		}
	}
	start := time.Now()
	runner := bench.NewRunner(bench.RunnerConfig{
		Parallel: *parallel,
		Cache:    cache,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rtuning %d/%d cells  %5.1fs", done, total,
				time.Since(start).Seconds())
			if done == total {
				fmt.Fprint(os.Stderr, "\r\033[K")
			}
		},
	})

	fmt.Printf("tuning PiP-MColl switch points on %dx%d\n\n", *nodes, *ppn)
	resp, err := query.Execute(context.Background(), runner, req)
	if err != nil {
		logger.Error("tune failed", "error", err)
		os.Exit(1)
	}
	logStages(logger, resp)
	fmt.Print(resp.Analysis)
	if cache != nil {
		hits, misses := cache.Stats()
		fmt.Printf("\ncache: %d hits, %d misses (%s)\n", hits, misses, cache.Dir())
	}
}

// logStages emits the executor's wall-clock stage breakdown as one debug
// line — the CLI-side view of the same spans pipmcoll-serve reports per
// request.
func logStages(logger *slog.Logger, resp *query.Response) {
	attrs := []any{"key", resp.Key, "cells", resp.Cells, "elapsed_ms", resp.ElapsedMS}
	for _, st := range resp.Stages {
		attrs = append(attrs, "stage_"+st.Name+"_us", int64(st.US))
	}
	logger.Debug("query executed", attrs...)
}
