// Command pipmcoll-tune measures PiP-MColl's small- and large-message
// algorithm variants across a size ladder on a chosen cluster shape and
// recommends the switch points (core.Tunables) for that configuration —
// the offline tuning stage a production MPI library ships with. The paper's
// 64 kB / 8k-count switches are Bebop's values; other fabrics move the
// crossovers (see EXPERIMENTS.md ablation A2).
//
// Usage:
//
//	pipmcoll-tune [-nodes 8] [-ppn 6] [-queue-bw GB/s] [-link-bw GB/s]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/mpi"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster nodes")
	ppn := flag.Int("ppn", 6, "processes per node")
	queueBW := flag.Float64("queue-bw", 0, "override per-queue DMA bandwidth (GB/s)")
	linkBW := flag.Float64("link-bw", 0, "override node link bandwidth (GB/s)")
	flag.Parse()

	cfg := mpi.DefaultConfig()
	if *queueBW > 0 {
		cfg.Fabric.QueueBandwidth = *queueBW * 1e9
	}
	if *linkBW > 0 {
		cfg.Fabric.LinkBandwidth = *linkBW * 1e9
	}

	fmt.Printf("tuning PiP-MColl switch points on %dx%d\n\n", *nodes, *ppn)
	res, err := bench.Tune(cfg, *nodes, *ppn, bench.Opts{Warmup: 1, Iters: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
}
