// Command pipmcoll-trace runs one collective under a chosen library with
// the event tracer attached and reports the communication structure: intra-
// vs internode message counts and volumes, a causality check (every receive
// at or after its matching send), and optionally the raw event timeline.
// It makes the algorithmic differences between the profiles inspectable —
// e.g. PiP-MColl's allgather moving node slabs once versus the flat
// baseline's per-rank duplication.
//
// Usage:
//
//	pipmcoll-trace [-lib PiP-MColl] [-op allgather] [-nodes 4] [-ppn 4]
//	               [-bytes 1024] [-events]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	libName := flag.String("lib", "PiP-MColl", "library profile (see pipmcoll-validate)")
	op := flag.String("op", "allgather", "collective: scatter|allgather|allreduce|bcast|gather|reduce|alltoall")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	ppn := flag.Int("ppn", 4, "processes per node")
	bytesN := flag.Int("bytes", 1024, "per-process payload (float64-aligned for reductions)")
	events := flag.Bool("events", false, "dump the raw event timeline")
	flag.Parse()

	lib, err := libs.ByName(*libName)
	if err != nil {
		log.Fatal(err)
	}
	cluster := topology.New(*nodes, *ppn, topology.Block)
	world, err := mpi.NewWorld(cluster, lib.Config())
	if err != nil {
		log.Fatal(err)
	}
	lg := trace.NewLog(0)
	world.SetTracer(lg)

	size := cluster.Size()
	if err := world.Run(func(r *mpi.Rank) {
		switch *op {
		case "scatter":
			var send []byte
			if r.Rank() == 0 {
				send = make([]byte, size**bytesN)
			}
			lib.Scatter(r, 0, send, make([]byte, *bytesN))
		case "allgather":
			lib.Allgather(r, make([]byte, *bytesN), make([]byte, size**bytesN))
		case "allreduce":
			lib.Allreduce(r, make([]byte, *bytesN), make([]byte, *bytesN), nums.Sum)
		case "bcast":
			lib.Bcast(r, 0, make([]byte, *bytesN))
		case "gather":
			var recv []byte
			if r.Rank() == 0 {
				recv = make([]byte, size**bytesN)
			}
			lib.Gather(r, 0, make([]byte, *bytesN), recv)
		case "reduce":
			var recv []byte
			if r.Rank() == 0 {
				recv = make([]byte, *bytesN)
			}
			lib.Reduce(r, 0, make([]byte, *bytesN), recv, nums.Sum)
		case "alltoall":
			lib.Alltoall(r, make([]byte, size**bytesN), make([]byte, size**bytesN))
		default:
			log.Fatalf("unknown op %q", *op)
		}
	}); err != nil {
		log.Fatal(err)
	}

	v := lg.Volume()
	fmt.Printf("%s %s on %v, %dB per process\n\n", lib.Name(), *op, cluster, *bytesN)
	fmt.Printf("internode: %6d messages, %10d bytes\n", v.SendsInter, v.BytesInter)
	fmt.Printf("intranode: %6d messages, %10d bytes (point-to-point only; PiP\n", v.SendsIntra, v.BytesIntra)
	fmt.Printf("           board copies are direct loads/stores and never appear here)\n")
	fmt.Printf("makespan:  %v\n", world.Horizon())
	if msg := lg.CheckCausality(); msg != "" {
		log.Fatalf("causality violation: %s", msg)
	}
	fmt.Println("causality: ok (every receive at or after its matching send)")
	if *events {
		fmt.Println()
		fmt.Print(lg.Format())
	}
}
