// Command pipmcoll-trace runs one collective under a chosen library with
// the observability recorder attached and reports the communication
// structure: intra- vs internode message counts and volumes, a causality
// check (every receive at or after its matching send), and optionally the
// raw event timeline, a metrics dump, a critical-path breakdown, or a
// Perfetto trace. It makes the algorithmic differences between the
// profiles inspectable — e.g. PiP-MColl's allgather moving node slabs once
// versus the flat baseline's per-rank duplication.
//
// Usage:
//
//	pipmcoll-trace [-lib PiP-MColl] [-op allgather] [-nodes 4] [-ppn 4]
//	               [-bytes 1024] [-events] [-metrics] [-critical-path]
//	               [-perfetto out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/trace"
)

// ops maps each -op value to the body that runs it on a rank. Keeping the
// table explicit lets the flag be validated (with the list of valid names)
// before any simulation state is built.
var ops = map[string]func(lib *libs.Library, r *mpi.Rank, size, bytesN int){
	"scatter": func(lib *libs.Library, r *mpi.Rank, size, bytesN int) {
		var send []byte
		if r.Rank() == 0 {
			send = make([]byte, size*bytesN)
		}
		lib.Scatter(r, 0, send, make([]byte, bytesN))
	},
	"allgather": func(lib *libs.Library, r *mpi.Rank, size, bytesN int) {
		lib.Allgather(r, make([]byte, bytesN), make([]byte, size*bytesN))
	},
	"allreduce": func(lib *libs.Library, r *mpi.Rank, size, bytesN int) {
		lib.Allreduce(r, make([]byte, bytesN), make([]byte, bytesN), nums.Sum)
	},
	"bcast": func(lib *libs.Library, r *mpi.Rank, size, bytesN int) {
		lib.Bcast(r, 0, make([]byte, bytesN))
	},
	"gather": func(lib *libs.Library, r *mpi.Rank, size, bytesN int) {
		var recv []byte
		if r.Rank() == 0 {
			recv = make([]byte, size*bytesN)
		}
		lib.Gather(r, 0, make([]byte, bytesN), recv)
	},
	"reduce": func(lib *libs.Library, r *mpi.Rank, size, bytesN int) {
		var recv []byte
		if r.Rank() == 0 {
			recv = make([]byte, bytesN)
		}
		lib.Reduce(r, 0, make([]byte, bytesN), recv, nums.Sum)
	},
	"alltoall": func(lib *libs.Library, r *mpi.Rank, size, bytesN int) {
		lib.Alltoall(r, make([]byte, size*bytesN), make([]byte, size*bytesN))
	},
}

func opNames() []string {
	names := make([]string, 0, len(ops))
	for n := range ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pipmcoll-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	libName := flag.String("lib", "PiP-MColl", "library profile (see pipmcoll-validate)")
	op := flag.String("op", "allgather", "collective to run (one of the names below)")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	ppn := flag.Int("ppn", 4, "processes per node")
	bytesN := flag.Int("bytes", 1024, "per-process payload (float64-aligned for reductions)")
	events := flag.Bool("events", false, "dump the raw event timeline")
	metrics := flag.Bool("metrics", false, "dump the metrics registry (counters, gauges, histograms)")
	critPath := flag.Bool("critical-path", false, "report the longest dependency chain with per-component virtual-time attribution")
	perfetto := flag.String("perfetto", "", "write a Chrome trace_event / Perfetto JSON trace to this file (load at ui.perfetto.dev)")
	flag.Parse()

	body, ok := ops[*op]
	if !ok {
		return fmt.Errorf("unknown -op %q; valid ops: %v", *op, opNames())
	}
	lib, err := libs.ByName(*libName)
	if err != nil {
		return err
	}

	cluster := topology.New(*nodes, *ppn, topology.Block)
	world, err := mpi.NewWorld(cluster, lib.Config())
	if err != nil {
		return err
	}
	rec := obs.NewRecorder()
	world.Observe(rec)
	lg := trace.NewLog(0)
	world.SetTracer(lg)

	size := cluster.Size()
	if err := world.Run(func(r *mpi.Rank) {
		body(lib, r, size, *bytesN)
	}); err != nil {
		return err
	}

	v := lg.Volume()
	fmt.Printf("%s %s on %v, %dB per process\n\n", lib.Name(), *op, cluster, *bytesN)
	fmt.Printf("internode: %6d messages, %10d bytes\n", v.SendsInter, v.BytesInter)
	fmt.Printf("intranode: %6d messages, %10d bytes (point-to-point only; PiP\n", v.SendsIntra, v.BytesIntra)
	fmt.Printf("           board copies are direct loads/stores and never appear here)\n")
	fmt.Printf("makespan:  %v\n", world.Horizon())
	if msg := lg.CheckCausality(); msg != "" {
		return fmt.Errorf("causality violation: %s", msg)
	}
	fmt.Println("causality: ok (every receive at or after its matching send)")

	if *critPath {
		fmt.Println()
		fmt.Print(rec.CriticalPath().Format())
	}
	if *metrics {
		fmt.Println()
		rec.Metrics().Dump(os.Stdout)
	}
	if *events {
		fmt.Println()
		fmt.Print(lg.Format())
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			return err
		}
		if err := rec.WritePerfetto(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("perfetto:  wrote %s (load at ui.perfetto.dev)\n", *perfetto)
	}
	return nil
}
