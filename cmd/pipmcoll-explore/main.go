// Command pipmcoll-explore studies the reproduction's cost model: it prints
// the active calibration, compares the paper's Section III closed-form
// predictions against simulated runtimes across message sizes, and runs the
// design-choice ablations DESIGN.md calls out (multi-object vs
// single-object, transport mechanism under a fixed algorithm, PiP size-sync
// on/off via the baseline comparison).
//
// Usage:
//
//	pipmcoll-explore [-nodes 8] [-ppn 4] [-queue-bw GB/s] [-link-bw GB/s] [-copy-bw GB/s]
package main

import (
	"flag"
	"fmt"

	"repro/internal/bench"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/shm"
	"repro/internal/simtime"
	"repro/internal/topology"
)

func main() {
	nodes := flag.Int("nodes", 8, "cluster nodes")
	ppn := flag.Int("ppn", 4, "processes per node")
	queueBW := flag.Float64("queue-bw", 0, "override per-queue DMA bandwidth (GB/s)")
	linkBW := flag.Float64("link-bw", 0, "override node link bandwidth (GB/s)")
	copyBW := flag.Float64("copy-bw", 0, "override intranode copy bandwidth (GB/s)")
	memBW := flag.Float64("mem-bw", 0, "enable aggregate node memory contention at this bandwidth (GB/s)")
	flag.Parse()

	cfg := mpi.DefaultConfig()
	if *queueBW > 0 {
		cfg.Fabric.QueueBandwidth = *queueBW * 1e9
	}
	if *linkBW > 0 {
		cfg.Fabric.LinkBandwidth = *linkBW * 1e9
	}
	if *copyBW > 0 {
		cfg.Shm.CopyBandwidth = *copyBW * 1e9
	}
	if *memBW > 0 {
		cfg.Shm.NodeMemBandwidth = *memBW * 1e9
	}

	fmt.Printf("Calibration (%dx%d cluster):\n", *nodes, *ppn)
	fmt.Printf("  fabric: wire=%v queueOverhead=%v queueBW=%.3g GB/s linkOverhead=%v linkBW=%.3g GB/s eager=%dB window=%d\n",
		cfg.Fabric.WireLatency, cfg.Fabric.QueueOverhead, cfg.Fabric.QueueBandwidth/1e9,
		cfg.Fabric.LinkOverhead, cfg.Fabric.LinkBandwidth/1e9, cfg.Fabric.EagerLimit, cfg.Fabric.InjectionWindow)
	fmt.Printf("  shm:    alphaR=%v copyBW=%.3g GB/s reduceBW=%.3g GB/s syscall=%v pagefault=%v attach=%v sizeSync=%v\n\n",
		cfg.Shm.Latency, cfg.Shm.CopyBandwidth/1e9, cfg.Shm.ReduceBandwidth/1e9,
		cfg.Shm.SyscallCost, cfg.Shm.PageFaultCost, cfg.Shm.AttachCost, cfg.Shm.PiPSizeSync)

	model := bench.NewModel(cfg, *nodes, *ppn)
	fmt.Printf("Derived Hockney constants: alphaR=%v alphaE=%v betaR=%.3g s/B betaE=%.3g s/B gamma=%.3g s/B\n\n",
		model.AlphaR, model.AlphaE, model.BetaR, model.BetaE, model.Gamma)

	fmt.Println("Section III predictions vs simulation (PiP-MColl):")
	fmt.Printf("%-18s %10s %12s %12s %8s\n", "experiment", "size", "predicted", "simulated", "ratio")
	lib := libs.PiPMColl()
	rows := []struct {
		name    string
		op      bench.Op
		sizes   []int
		predict func(int) simtime.Duration
	}{
		{"scatter", bench.OpScatter, []int{64, 1 << 10, 16 << 10, 128 << 10}, model.ScatterTime},
		{"allgather-small", bench.OpAllgather, []int{64, 1 << 10, 8 << 10}, model.AllgatherSmallTime},
		{"allgather-large", bench.OpAllgather, []int{64 << 10, 256 << 10}, model.AllgatherLargeTime},
		{"allreduce-small", bench.OpAllreduce, []int{64, 1 << 10, 8 << 10}, model.AllreduceSmallTime},
		{"allreduce-large", bench.OpAllreduce, []int{64 << 10, 256 << 10}, model.AllreduceLargeTime},
	}
	for _, row := range rows {
		for _, cb := range row.sizes {
			spec := bench.Spec{Lib: lib, Op: row.op, Nodes: *nodes, PPN: *ppn,
				Bytes: cb, Warmup: 1, Iters: 1}
			m := bench.MustRun(spec)
			pred := row.predict(cb).Microseconds()
			fmt.Printf("%-18s %10s %10.4gus %10.4gus %8.2f\n",
				row.name, size(cb), pred, m.MeanMicros(), m.MeanMicros()/pred)
		}
	}

	fmt.Println("\nAblation: intranode mechanism under the identical flat algorithm stack")
	fmt.Printf("%-12s", "size")
	mechs := []shm.Mechanism{shm.PiP, shm.POSIX, shm.CMA, shm.XPMEM, shm.KNEM}
	for _, m := range mechs {
		fmt.Printf(" %12s", m)
	}
	fmt.Println(" [us, allreduce]")
	for _, cb := range []int{256, 8 << 10, 256 << 10} {
		fmt.Printf("%-12s", size(cb))
		for _, mech := range mechs {
			fmt.Printf(" %12.4g", mechTime(cfg, mech, *nodes, *ppn, cb))
		}
		fmt.Println()
	}

	fmt.Println("\nAblation: multi-object vs single-object internode exchange (Figure 1 premise)")
	fmt.Printf("%-8s %18s %22s\n", "pairs", "msg rate (M/s, 4kB)", "throughput (GB/s, 128kB)")
	for _, k := range []int{1, 2, 4, 8, *ppn} {
		r, bw := bench.FloodRates(k, 200, 4<<10, cfg.Fabric)
		_, bw2 := bench.FloodRates(k, 50, 128<<10, cfg.Fabric)
		_ = bw
		fmt.Printf("%-8d %18.3f %22.2f\n", k, r/1e6, bw2/1e9)
	}
}

// mechTime measures a flat recursive-doubling allreduce under one intranode
// mechanism, isolating the transport axis.
func mechTime(cfg mpi.Config, mech shm.Mechanism, nodes, ppn, cb int) float64 {
	c := cfg
	c.Mechanism = mech
	w := mpi.MustNewWorld(topology.New(nodes, ppn, topology.Block), c)
	var dur simtime.Duration
	if err := w.Run(func(r *mpi.Rank) {
		send := make([]byte, cb)
		nums.Fill(send, r.Rank())
		recv := make([]byte, cb)
		lib := libs.PiPMPICH() // flat algorithm stack; transport comes from c
		// Warm attach caches, then measure.
		lib.Allreduce(r, send, recv, nums.Sum)
		r.HarnessBarrier()
		start := r.Now()
		lib.Allreduce(r, send, recv, nums.Sum)
		r.HarnessBarrier()
		if r.Rank() == 0 {
			dur = r.Now().Sub(start)
		}
	}); err != nil {
		panic(err)
	}
	return dur.Microseconds()
}

func size(n int) string {
	if n >= 1<<10 && n%(1<<10) == 0 {
		return fmt.Sprintf("%dkB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
