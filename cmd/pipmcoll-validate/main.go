// Command pipmcoll-validate sweeps every library profile, collective, and a
// grid of cluster shapes and payload sizes, verifying each result against
// the serial reference (the bench runner checks every rank's output). It
// prints a pass/fail line per combination and exits non-zero on any
// failure — the repository's end-to-end correctness gate.
//
// Usage:
//
//	pipmcoll-validate [-quick] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/libs"
)

func main() {
	quick := flag.Bool("quick", false, "smaller shape/size grid")
	verbose := flag.Bool("v", false, "print every combination, not just failures")
	flag.Parse()

	shapes := [][2]int{{1, 1}, {1, 4}, {2, 3}, {4, 4}, {5, 3}, {8, 2}, {4, 6}}
	sizes := []int{8, 64, 1 << 10, 16 << 10, 96 << 10}
	if *quick {
		shapes = [][2]int{{2, 3}, {4, 4}}
		sizes = []int{64, 96 << 10}
	}
	ops := []bench.Op{bench.OpScatter, bench.OpAllgather, bench.OpAllreduce}
	extOps := []string{"bcast", "gather", "reduce", "alltoall"}
	ls := append(libs.All(), libs.PiPMCollSmall())

	start := time.Now()
	total, failed := 0, 0
	report := func(l *libs.Library, op string, sh [2]int, size int, err error) {
		total++
		switch {
		case err != nil:
			failed++
			fmt.Printf("FAIL %-16s %-9s %3dx%-2d %7dB: %v\n",
				l.Name(), op, sh[0], sh[1], size, err)
		case *verbose:
			fmt.Printf("ok   %-16s %-9s %3dx%-2d %7dB\n",
				l.Name(), op, sh[0], sh[1], size)
		}
	}
	for _, l := range ls {
		for _, op := range ops {
			for _, sh := range shapes {
				for _, size := range sizes {
					_, err := bench.Run(bench.Spec{
						Lib: l, Op: op, Nodes: sh[0], PPN: sh[1],
						Bytes: size, Warmup: 1, Iters: 1,
					})
					report(l, string(op), sh, size, err)
				}
			}
		}
		for _, op := range extOps {
			for _, sh := range shapes {
				for _, size := range sizes {
					err := bench.RunExtension(l, op, sh[0], sh[1], size)
					report(l, op, sh, size, err)
				}
			}
		}
	}
	fmt.Printf("\n%d combinations, %d failed, %.1fs\n", total, failed, time.Since(start).Seconds())
	if failed > 0 {
		os.Exit(1)
	}
}
