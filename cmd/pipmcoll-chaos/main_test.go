package main

import (
	"bufio"
	"os"
	"reflect"
	"regexp"
	"testing"

	"repro/internal/fault"
	"repro/internal/libs"
)

// scenarioListRe matches one catalogue entry in README.md's scenario list:
//
//	- `name` — one-line description
var scenarioListRe = regexp.MustCompile("^- `([a-z-]+)` — (.+)$")

// readmeScenarios parses the scenario catalogue out of README.md.
func readmeScenarios(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if m := scenarioListRe.FindStringSubmatch(sc.Text()); m != nil {
			if _, dup := got[m[1]]; dup {
				t.Fatalf("README lists scenario %q twice", m[1])
			}
			got[m[1]] = m[2]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestReadmeScenarioCatalogue pins the README's scenario list to the code:
// same names, same one-line descriptions, nothing missing, nothing extra.
// If this fails, update the list under "Chaos & resilience" in README.md to
// match the `scenarios` catalogue (or vice versa).
func TestReadmeScenarioCatalogue(t *testing.T) {
	documented := readmeScenarios(t)
	if len(documented) == 0 {
		t.Fatal("README.md has no scenario list entries (format: \"- `name` — description\")")
	}
	inCode := map[string]string{}
	for _, s := range scenarios {
		inCode[s.name] = s.about
	}
	for name, about := range inCode {
		doc, ok := documented[name]
		if !ok {
			t.Errorf("scenario %q is in the catalogue but not in README.md", name)
			continue
		}
		if doc != about {
			t.Errorf("scenario %q drifted:\n  code:   %s\n  README: %s", name, about, doc)
		}
	}
	for name := range documented {
		if _, ok := inCode[name]; !ok {
			t.Errorf("README.md documents scenario %q, which the catalogue does not have", name)
		}
	}
}

// TestDeathScenariosDeterministic runs every kill-armed scenario twice at a
// fixed seed and requires identical recovery outcomes: horizon, dead set,
// final membership, and every fault/recovery counter.
func TestDeathScenariosDeterministic(t *testing.T) {
	lib, err := libs.ByName("PiP-MColl")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, s := range scenarios {
		plan := mustPlan(t, s, 42)
		if !plan.HasKills() {
			continue
		}
		ran++
		t.Run(s.name, func(t *testing.T) {
			a, err := simulateRecovery(lib, "allreduce", 4, 4, 4096, 4, plan, "")
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := simulateRecovery(lib, "allreduce", 4, 4, 4096, 4, mustPlan(t, s, 42), "")
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("nondeterministic outcome:\n  %+v\n  %+v", a, b)
			}
			if len(a.dead) == 0 {
				t.Fatal("death scenario killed nobody")
			}
			if a.shrinks == 0 {
				t.Fatal("death scenario never shrank")
			}
		})
	}
	if ran != 3 {
		t.Fatalf("expected 3 kill-armed scenarios, found %d", ran)
	}
}

// TestDeathScenarioEveryOp drives each supported collective through the
// rank-death scenario: all must terminate, shrink, and verify on survivors.
func TestDeathScenarioEveryOp(t *testing.T) {
	lib, err := libs.ByName("PiP-MColl")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := findScenario("rank-death")
	if !ok {
		t.Fatal("rank-death scenario missing")
	}
	for _, op := range []string{"bcast", "scatter", "allgather", "allreduce"} {
		t.Run(op, func(t *testing.T) {
			out, err := simulateRecovery(lib, op, 2, 4, 1024, 3, mustPlan(t, s, 7), "")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out.dead, []int{1}) {
				t.Fatalf("dead = %v, want [1]", out.dead)
			}
			if out.shrinks == 0 || out.killed != 1 {
				t.Fatalf("outcome %+v: want 1 kill and at least one shrink", out)
			}
			for _, m := range out.final {
				if m == 1 {
					t.Fatalf("dead rank 1 still in final membership %v", out.final)
				}
			}
		})
	}
}

func mustPlan(t *testing.T, s scenario, seed uint64) *fault.Plan {
	t.Helper()
	plan, err := fault.New(s.spec(seed))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}
