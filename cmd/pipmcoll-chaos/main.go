// Command pipmcoll-chaos runs one collective under a named fault scenario
// and prints a resilience report: the fault-free baseline horizon, the
// faulted horizon, the fault counters (drops, corruptions, retransmits,
// stalls, noise detours), and the outcome of two audits — the collective's
// result must still be correct on every rank, and the fabric's loss
// accounting must balance (every injected drop or corruption matched by a
// retransmit).
//
// Usage:
//
//	pipmcoll-chaos [-scenario flaky-fabric] [-lib PiP-MColl] [-op allreduce]
//	               [-nodes 4] [-ppn 4] [-bytes 4096] [-rounds 4] [-seed 42]
//	               [-timeout 0] [-trace FILE] [-list]
//
// Exit status: 0 on a clean resilient run, 1 on a simulation failure (a
// deadlock, a timeout, a wrong result), 2 on a broken resilience invariant
// (unbalanced loss accounting). The watchdog and per-op timeouts stay armed,
// so a scenario that wedges the collective terminates with a diagnosis
// instead of hanging.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/coll"
	"repro/internal/fault"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/obs"
	screcover "repro/internal/recover"
	"repro/internal/simtime"
	"repro/internal/topology"
)

// scenario is a named, parameter-free chaos plan builder: given a seed it
// produces the fault spec the run injects.
type scenario struct {
	name  string
	about string
	spec  func(seed uint64) fault.Spec
}

// scenarios is the named chaos catalogue. Every spec uses open-ended
// windows where possible so the scenario applies at any shape or payload.
var scenarios = []scenario{
	{
		name:  "flaky-fabric",
		about: "10% eager drops + 2% corruption, 5us RTO",
		spec: func(seed uint64) fault.Spec {
			return fault.Spec{Seed: seed, Loss: fault.Loss{
				DropRate: 0.10, CorruptRate: 0.02, RTO: 5 * simtime.Microsecond,
			}}
		},
	},
	{
		name:  "degraded-link",
		about: "node 0 link at half bandwidth, 4x overhead",
		spec: func(seed uint64) fault.Spec {
			return fault.Spec{Seed: seed, Degrade: []fault.LinkDegrade{{
				Node: 0, BandwidthScale: 0.5, OverheadScale: 4,
			}}}
		},
	},
	{
		name:  "noisy-os",
		about: "1us detours every ~5us on every rank (20% noise)",
		spec: func(seed uint64) fault.Spec {
			return fault.Spec{Seed: seed, Noise: []fault.Noise{{
				Amplitude: simtime.Microsecond, Period: 5 * simtime.Microsecond, Jitter: 0.3,
			}}}
		},
	},
	{
		name:  "straggler",
		about: "rank 0 loses 10us every ~20us (a 50% straggler)",
		spec: func(seed uint64) fault.Spec {
			return fault.Spec{Seed: seed, Noise: []fault.Noise{{
				Ranks: []int{0}, Amplitude: 10 * simtime.Microsecond, Period: 20 * simtime.Microsecond, Jitter: 0.2,
			}}}
		},
	},
	{
		name:  "nic-stall",
		about: "node 0 queue 0 frozen for 25us at t=5us",
		spec: func(seed uint64) fault.Spec {
			return fault.Spec{Seed: seed, Stalls: []fault.QueueStall{{
				Node: 0, Queue: 0, From: simtime.Time(5 * simtime.Microsecond), Duration: 25 * simtime.Microsecond,
			}}}
		},
	},
	{
		name:  "mixed",
		about: "flaky fabric + OS noise + a degraded node at once",
		spec: func(seed uint64) fault.Spec {
			return fault.Spec{
				Seed: seed,
				Loss: fault.Loss{DropRate: 0.05, RTO: 5 * simtime.Microsecond},
				Noise: []fault.Noise{{
					Amplitude: 500 * simtime.Nanosecond, Period: 5 * simtime.Microsecond, Jitter: 0.3,
				}},
				Degrade: []fault.LinkDegrade{{Node: 0, BandwidthScale: 0.7, OverheadScale: 2}},
			}
		},
	},
	{
		name:  "rank-death",
		about: "rank 1 dies permanently at t=3us, mid-collective",
		spec: func(seed uint64) fault.Spec {
			return fault.Spec{Seed: seed, KillRanks: []fault.KillRank{
				{Rank: 1, At: simtime.Time(3 * simtime.Microsecond)},
			}}
		},
	},
	{
		name:  "node-death",
		about: "node 1 dies at t=3us, taking all its ranks",
		spec: func(seed uint64) fault.Spec {
			return fault.Spec{Seed: seed, KillNodes: []fault.KillNode{
				{Node: 1, At: simtime.Time(3 * simtime.Microsecond)},
			}}
		},
	},
	{
		name:  "cascading-failures",
		about: "three staggered rank deaths across successive recoveries",
		spec: func(seed uint64) fault.Spec {
			return fault.Spec{Seed: seed, KillRanks: []fault.KillRank{
				{Rank: 1, At: simtime.Time(2 * simtime.Microsecond)},
				{Rank: 5, At: simtime.Time(60 * simtime.Microsecond)},
				{Rank: 2, At: simtime.Time(120 * simtime.Microsecond)},
			}}
		},
	},
}

func findScenario(name string) (scenario, bool) {
	for _, s := range scenarios {
		if s.name == name {
			return s, true
		}
	}
	return scenario{}, false
}

func main() {
	os.Exit(run())
}

func run() int {
	scen := flag.String("scenario", "flaky-fabric", "named fault scenario (see -list)")
	libName := flag.String("lib", "PiP-MColl", "library under test")
	op := flag.String("op", "allreduce", "collective: bcast, scatter, allgather or allreduce")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	ppn := flag.Int("ppn", 4, "processes per node")
	bytes := flag.Int("bytes", 4096, "per-process payload")
	rounds := flag.Int("rounds", 4, "collective invocations per run")
	seed := flag.Uint64("seed", 42, "fault plan seed")
	timeoutFlag := flag.Duration("timeout", 0, "per-op virtual-time timeout (0 = watchdog only)")
	traceFile := flag.String("trace", "", "write the faulted run's Perfetto trace to this file")
	list := flag.Bool("list", false, "list scenarios and exit")
	flag.Parse()

	if *list {
		for _, s := range scenarios {
			fmt.Printf("  %-14s %s\n", s.name, s.about)
		}
		return 0
	}
	s, ok := findScenario(*scen)
	if !ok {
		var names []string
		for _, sc := range scenarios {
			names = append(names, sc.name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "pipmcoll-chaos: unknown scenario %q (have %v)\n", *scen, names)
		return 1
	}
	lib, err := libs.ByName(*libName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipmcoll-chaos:", err)
		return 1
	}
	plan, err := fault.New(s.spec(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipmcoll-chaos:", err)
		return 1
	}
	// The -timeout flag is wall-clock syntax ("100us") for a virtual-time
	// bound; convert nanoseconds to simulation picoseconds.
	timeout := simtime.Nanos(float64(timeoutFlag.Nanoseconds()))

	fmt.Printf("scenario %s (%s), seed %d\n", s.name, s.about, *seed)
	fmt.Printf("%s %s on %dx%d ranks, %d B x %d rounds\n\n", lib.Name(), *op, *nodes, *ppn, *bytes, *rounds)

	if plan.HasKills() {
		return runDeathScenario(s, lib, *op, *nodes, *ppn, *bytes, *rounds, plan, *traceFile)
	}

	baseline, err := simulate(lib, *op, *nodes, *ppn, *bytes, *rounds, nil, timeout, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipmcoll-chaos: fault-free baseline failed: %v\n", diagnose(err))
		return 1
	}
	faulted, err := simulate(lib, *op, *nodes, *ppn, *bytes, *rounds, plan, timeout, *traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipmcoll-chaos: faulted run failed: %v\n", diagnose(err))
		return 1
	}

	fmt.Printf("  baseline horizon  %12.3f us\n", baseline.horizon.Microseconds())
	slow := 0.0
	if baseline.horizon > 0 {
		slow = 100 * (faulted.horizon.Microseconds() - baseline.horizon.Microseconds()) / baseline.horizon.Microseconds()
	}
	fmt.Printf("  faulted horizon   %12.3f us  (%+.1f%%)\n\n", faulted.horizon.Microseconds(), slow)
	fmt.Printf("  drops=%d corruptions=%d retransmits=%d stalls=%d\n",
		faulted.drops, faulted.corruptions, faulted.retransmits, faulted.stalls)
	fmt.Printf("  noise: %d detours, %d ns billed\n", faulted.detours, faulted.noiseNs)
	fmt.Println("  results verified correct on every rank")

	if faulted.drops+faulted.corruptions != faulted.retransmits {
		fmt.Printf("\nFAIL: loss accounting broken: %d drops + %d corruptions != %d retransmits\n",
			faulted.drops, faulted.corruptions, faulted.retransmits)
		return 2
	}
	fmt.Println("  loss accounting balanced: drops + corruptions == retransmits")
	fmt.Println("\nresilient: collective completed correctly under", s.name)
	return 0
}

// runDeathScenario drives a permanent-failure scenario: every rank runs the
// collective through the self-healing loop (internal/recover), so a death
// mid-collective surfaces as a typed detection, a communicator shrink, and a
// re-execution on the survivors instead of a wedge. Exit codes match the
// loss scenarios: 0 resilient, 1 simulation failure, 2 broken invariant.
func runDeathScenario(s scenario, lib *libs.Library, op string, nodes, ppn, bytes, rounds int, plan *fault.Plan, traceFile string) int {
	baseline, err := simulateRecovery(lib, op, nodes, ppn, bytes, rounds, nil, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipmcoll-chaos: fault-free baseline failed: %v\n", diagnose(err))
		return 1
	}
	faulted, err := simulateRecovery(lib, op, nodes, ppn, bytes, rounds, plan, traceFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipmcoll-chaos: faulted run failed: %v\n", diagnose(err))
		return 1
	}

	fmt.Printf("  baseline horizon  %12.3f us\n", baseline.horizon.Microseconds())
	slow := 0.0
	if baseline.horizon > 0 {
		slow = 100 * (faulted.horizon.Microseconds() - baseline.horizon.Microseconds()) / baseline.horizon.Microseconds()
	}
	fmt.Printf("  faulted horizon   %12.3f us  (%+.1f%%)\n\n", faulted.horizon.Microseconds(), slow)
	fmt.Printf("  deaths: ranks %v (fault.proc_killed=%d, detections=%d)\n",
		faulted.dead, faulted.killed, faulted.detected)
	fmt.Printf("  recovery: shrinks=%d retries=%d across %d rounds\n",
		faulted.shrinks, faulted.retries, rounds)
	fmt.Printf("  final communicator: %d rank(s) %v\n", len(faulted.final), faulted.final)
	fmt.Println("  survivor results verified bit-exact against the serial reference on the shrunk communicator")

	if int64(len(faulted.dead)) != faulted.killed {
		fmt.Printf("\nFAIL: death accounting broken: %d dead ranks but proc_killed=%d\n",
			len(faulted.dead), faulted.killed)
		return 2
	}
	if len(faulted.dead) > 0 && faulted.shrinks == 0 {
		fmt.Println("\nFAIL: ranks died but the recovery loop never shrank")
		return 2
	}
	for _, d := range faulted.dead {
		for _, m := range faulted.final {
			if d == m {
				fmt.Printf("\nFAIL: dead rank %d still a member of the final communicator\n", d)
				return 2
			}
		}
	}
	fmt.Println("\nresilient: collective self-healed under", s.name)
	return 0
}

// recoveryOutcome summarizes one self-healing run.
type recoveryOutcome struct {
	horizon           simtime.Duration
	dead              []int // world ranks that died
	final             []int // final communicator membership, agreed by survivors
	killed, detected  int64 // fault.proc_killed, fault.failures_detected
	shrinks, retries  int64 // recover.shrinks, recover.retries
}

// simulateRecovery runs `rounds` collectives through RunWithRecovery on a
// communicator that is carried — and healed — across rounds. The recovery
// rounds use the comm-scope baseline algorithms (coll.CommView): the paper's
// world-scope multi-object algorithms assume whole nodes and cannot run on a
// shrunk membership, which is exactly the distinction internal/mpi documents.
func simulateRecovery(lib *libs.Library, op string, nodes, ppn, bytes, rounds int, plan *fault.Plan, traceFile string) (recoveryOutcome, error) {
	const maxRetries = 8
	cfg := lib.Config()
	cfg.Faults = plan
	cluster := topology.New(nodes, ppn, topology.Block)
	world, err := mpi.NewWorld(cluster, cfg)
	if err != nil {
		return recoveryOutcome{}, err
	}
	var rec *obs.Recorder
	if traceFile != "" {
		rec = obs.NewRecorder()
	} else {
		rec = obs.NewLiteRecorder()
	}
	world.Observe(rec)

	size := cluster.Size()
	type rankReport struct {
		survived bool
		final    []int
		err      error
	}
	reports := make([]rankReport, size)
	runErr := world.Run(func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)
		for round := 0; round < rounds; round++ {
			opFn, verify := recoveryRound(op, r, bytes, round)
			if opFn == nil {
				reports[r.Rank()].err = fmt.Errorf("op %q not supported under death scenarios (have bcast, scatter, allgather, allreduce)", op)
				return
			}
			fc, _, rerr := screcover.RunWithRecovery(comm, opFn, maxRetries)
			if rerr != nil {
				reports[r.Rank()].err = fmt.Errorf("rank %d round %d: %w", r.Rank(), round, rerr)
				return
			}
			if verr := verify(fc); verr != nil {
				reports[r.Rank()].err = fmt.Errorf("rank %d round %d: %w", r.Rank(), round, verr)
				return
			}
			comm = fc // carry the healed communicator into the next round
		}
		reports[r.Rank()] = rankReport{survived: true, final: comm.WorldRanks()}
	})
	if runErr != nil {
		return recoveryOutcome{}, runErr
	}
	out := recoveryOutcome{
		horizon: world.Horizon().Sub(simtime.Time(0)),
		dead:    world.DeadRanks(),
	}
	for rank, rep := range reports {
		if rep.err != nil {
			return recoveryOutcome{}, rep.err
		}
		if world.Dead(rank) {
			continue
		}
		if !rep.survived {
			return recoveryOutcome{}, fmt.Errorf("rank %d neither died nor finished", rank)
		}
		if out.final == nil {
			out.final = rep.final
		} else if !equalInts(out.final, rep.final) {
			return recoveryOutcome{}, fmt.Errorf("survivors disagree on the final communicator: %v vs %v", out.final, rep.final)
		}
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return recoveryOutcome{}, err
		}
		if err := rec.WritePerfetto(f); err != nil {
			f.Close()
			return recoveryOutcome{}, err
		}
		if err := f.Close(); err != nil {
			return recoveryOutcome{}, err
		}
	}
	m := rec.Metrics()
	out.killed = m.Counter(obs.MetricProcKilled).Value()
	out.detected = m.Counter(obs.MetricFailuresDetected).Value()
	out.shrinks = m.Counter(obs.MetricRecoverShrinks).Value()
	out.retries = m.Counter(obs.MetricRecoverRetries).Value()
	return out, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// recoveryRound builds one round's recoverable operation and its verifier.
// The operation rebuilds its outputs from the original inputs on every
// attempt (the buffer-state contract: a failed attempt leaves receive buffers
// undefined) and sizes them to whatever communicator the loop passes; the
// verifier checks the last attempt's result against a serial reference over
// the final communicator's membership.
func recoveryRound(op string, r *mpi.Rank, bytes, round int) (func(*mpi.Comm) error, func(*mpi.Comm) error) {
	switch op {
	case "allreduce":
		in := make([]byte, bytes)
		nums.Fill(in, r.Rank())
		out := make([]byte, bytes)
		opFn := func(c *mpi.Comm) error {
			for i := range out {
				out[i] = 0
			}
			return mpi.Try(func() { coll.AllreduceRecDoubling(coll.CommView(c), in, out, nums.Sum) })
		}
		verify := func(fc *mpi.Comm) error {
			members := fc.WorldRanks()
			want := make([]byte, bytes)
			nums.Fill(want, members[0])
			tmp := make([]byte, bytes)
			for _, m := range members[1:] {
				nums.Fill(tmp, m)
				nums.Sum.Combine(want, tmp)
			}
			return check(op, r, out, want)
		}
		return opFn, verify
	case "bcast":
		buf := make([]byte, bytes)
		opFn := func(c *mpi.Comm) error {
			for i := range buf {
				buf[i] = 0
			}
			if c.Rank() == 0 {
				nums.FillBytes(buf, round)
			}
			return mpi.Try(func() { coll.Bcast(coll.CommView(c), 0, buf) })
		}
		verify := func(*mpi.Comm) error {
			want := make([]byte, bytes)
			nums.FillBytes(want, round)
			return check(op, r, buf, want)
		}
		return opFn, verify
	case "scatter":
		out := make([]byte, bytes)
		opFn := func(c *mpi.Comm) error {
			for i := range out {
				out[i] = 0
			}
			var in []byte
			if c.Rank() == 0 {
				members := c.WorldRanks()
				in = make([]byte, len(members)*bytes)
				for i, m := range members {
					nums.FillBytes(in[i*bytes:(i+1)*bytes], m+round)
				}
			}
			return mpi.Try(func() { coll.Scatter(coll.CommView(c), 0, in, out) })
		}
		verify := func(*mpi.Comm) error {
			want := make([]byte, bytes)
			nums.FillBytes(want, r.Rank()+round)
			return check(op, r, out, want)
		}
		return opFn, verify
	case "allgather":
		in := make([]byte, bytes)
		nums.FillBytes(in, r.Rank()+round)
		var out []byte
		opFn := func(c *mpi.Comm) error {
			out = make([]byte, c.Size()*bytes)
			return mpi.Try(func() { coll.Allgather(coll.CommView(c), in, out, 256<<10) })
		}
		verify := func(fc *mpi.Comm) error {
			members := fc.WorldRanks()
			want := make([]byte, len(members)*bytes)
			for i, m := range members {
				nums.FillBytes(want[i*bytes:(i+1)*bytes], m+round)
			}
			return check(op, r, out, want)
		}
		return opFn, verify
	}
	return nil, nil
}

// outcome summarizes one simulated run.
type outcome struct {
	horizon                         simtime.Duration
	drops, corruptions, retransmits int64
	stalls, detours, noiseNs        int64
}

// simulate runs `rounds` back-to-back collectives under an optional fault
// plan, verifying every rank's result, and returns the horizon plus the
// fault counters.
func simulate(lib *libs.Library, op string, nodes, ppn, bytes, rounds int, plan *fault.Plan, timeout simtime.Duration, traceFile string) (outcome, error) {
	cfg := lib.Config()
	cfg.Faults = plan
	cfg.OpTimeout = timeout
	cluster := topology.New(nodes, ppn, topology.Block)
	world, err := mpi.NewWorld(cluster, cfg)
	if err != nil {
		return outcome{}, err
	}
	var rec *obs.Recorder
	if traceFile != "" {
		rec = obs.NewRecorder()
	} else {
		rec = obs.NewLiteRecorder()
	}
	world.Observe(rec)
	size := cluster.Size()
	var verifyErr error
	runErr := world.Run(func(r *mpi.Rank) {
		for round := 0; round < rounds; round++ {
			if err := runVerified(lib, op, r, size, bytes, round); err != nil && verifyErr == nil {
				verifyErr = err
			}
			r.HarnessBarrier()
		}
	})
	if runErr != nil {
		return outcome{}, runErr
	}
	if verifyErr != nil {
		return outcome{}, verifyErr
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return outcome{}, err
		}
		if err := rec.WritePerfetto(f); err != nil {
			f.Close()
			return outcome{}, err
		}
		if err := f.Close(); err != nil {
			return outcome{}, err
		}
	}
	fs := world.Fabric().FaultStats()
	m := rec.Metrics()
	return outcome{
		horizon:     world.Horizon().Sub(simtime.Time(0)),
		drops:       fs.Drops,
		corruptions: fs.Corruptions,
		retransmits: fs.Retransmits,
		stalls:      fs.Stalls,
		detours:     m.Counter("fault.detours").Value(),
		noiseNs:     m.Counter("fault.noise_ns").Value(),
	}, nil
}

// runVerified executes one collective round and checks the result on the
// calling rank — under chaos the payloads must still arrive intact, since
// dropped and corrupted attempts are retransmitted, never delivered.
func runVerified(lib *libs.Library, op string, r *mpi.Rank, size, bytes, round int) error {
	switch op {
	case "bcast":
		buf := make([]byte, bytes)
		if r.Rank() == 0 {
			nums.FillBytes(buf, round)
		}
		lib.Bcast(r, 0, buf)
		want := make([]byte, bytes)
		nums.FillBytes(want, round)
		return check(op, r, buf, want)
	case "scatter":
		var in []byte
		if r.Rank() == 0 {
			in = make([]byte, size*bytes)
			for i := 0; i < size; i++ {
				nums.FillBytes(in[i*bytes:(i+1)*bytes], i+round)
			}
		}
		out := make([]byte, bytes)
		lib.Scatter(r, 0, in, out)
		want := make([]byte, bytes)
		nums.FillBytes(want, r.Rank()+round)
		return check(op, r, out, want)
	case "allgather":
		in := make([]byte, bytes)
		nums.FillBytes(in, r.Rank()+round)
		out := make([]byte, size*bytes)
		lib.Allgather(r, in, out)
		want := make([]byte, size*bytes)
		for i := 0; i < size; i++ {
			nums.FillBytes(want[i*bytes:(i+1)*bytes], i+round)
		}
		return check(op, r, out, want)
	case "allreduce":
		in := make([]byte, bytes)
		nums.Fill(in, r.Rank())
		out := make([]byte, bytes)
		lib.Allreduce(r, in, out, nums.Sum)
		want := make([]byte, bytes)
		nums.Fill(want, 0)
		tmp := make([]byte, bytes)
		for i := 1; i < size; i++ {
			nums.Fill(tmp, i)
			nums.Sum.Combine(want, tmp)
		}
		return check(op, r, out, want)
	default:
		return fmt.Errorf("unknown op %q (have bcast, scatter, allgather, allreduce)", op)
	}
}

func check(op string, r *mpi.Rank, got, want []byte) error {
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s rank %d: byte %d corrupted after recovery", op, r.Rank(), i)
		}
	}
	return nil
}

// diagnose renders the structured failure types with their full context —
// the watchdog's per-rank blocked-state diagnosis or the typed timeout.
func diagnose(err error) string {
	var de *mpi.DeadlockError
	if errors.As(err, &de) {
		return de.Error()
	}
	var te *mpi.TimeoutError
	if errors.As(err, &te) {
		return te.Error()
	}
	return err.Error()
}
