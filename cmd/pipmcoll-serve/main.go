// Command pipmcoll-serve exposes the deterministic benchmark harness as a
// simulation-as-a-service HTTP API. Clients POST what-if queries — a
// registered figure, an ad-hoc cell (library x collective x cluster shape
// x payload, optionally under a fault plan), or a tuning ladder — and get
// cached results in microseconds or scheduled execution over a bounded,
// client-fair worker pool. Results share the same content-addressed cache
// the CLIs use, so anything a CLI has computed is already warm here and
// vice versa.
//
// Usage:
//
//	pipmcoll-serve [-addr :8090] [-workers N] [-queue 256] [-per-client 64]
//	               [-nocache] [-cache-dir DIR] [-pprof] [-log-level info]
//	               [-drain-timeout 10s] [-cell-budget 0] [-replay]
//	pipmcoll-serve -loadtest [-clients 8] [-requests 50] [-retries 1] [-seed 0]
//
// Endpoints: POST /query (add ?stream=1 for NDJSON progress), GET
// /figures, GET /traces/{addr}, GET /metrics (Prometheus exposition;
// ?format=text for the aligned dump), GET /debug/requests (flight
// recorder), GET /debug/pprof/* (with -pprof), GET /healthz (liveness),
// GET /readyz (readiness; 503 while draining). On SIGTERM/SIGINT the
// server stops admitting new cells, keeps serving warm-cache hits, waits
// up to -drain-timeout for in-flight work, then shuts the listener down.
// See the README's Operations section for the full lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/query"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "cells simulating concurrently")
	queue := flag.Int("queue", 256, "max cells queued globally")
	perClient := flag.Int("per-client", 64, "max cells queued per client")
	nocache := flag.Bool("nocache", false, "bypass the on-disk result cache")
	cacheDir := flag.String("cache-dir", bench.DefaultCacheDir(), "result cache directory")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof profiling endpoints")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	recSize := flag.Int("flight-recorder", serve.DefaultFlightRecorderSize, "flight recorder capacity (recent requests kept for /debug/requests)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "on SIGTERM/SIGINT, how long to wait for in-flight work before abandoning it")
	cellBudget := flag.Duration("cell-budget", 0, "kill any single cell executing longer than this (0 disables the watchdog)")
	replay := flag.Bool("replay", false, "memoize fault-free cell schedules: record each shape's event DAG once, replay repeats goroutine-free")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "HTTP response write timeout (bounds one request end to end)")
	loadtest := flag.Bool("loadtest", false, "run the bundled load generator against an in-process server and exit")
	clients := flag.Int("clients", 8, "loadtest: concurrent clients")
	requests := flag.Int("requests", 50, "loadtest: requests per client")
	retries := flag.Int("retries", 1, "loadtest: attempts per request (1 = no retries)")
	seed := flag.Int64("seed", 0, "loadtest: retry jitter seed for reproducible runs (0 = clock)")
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipmcoll-serve:", err)
		os.Exit(1)
	}
	if err := run(*addr, *workers, *queue, *perClient, *nocache, *cacheDir,
		*pprofOn, *recSize, *drainTimeout, *cellBudget, *writeTimeout, *replay,
		logger, *loadtest, *clients, *requests, *retries, *seed); err != nil {
		logger.Error("fatal", "error", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger: structured key=value lines on
// stderr, so stdout stays reserved for results.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func run(addr string, workers, queue, perClient int, nocache bool, cacheDir string,
	pprofOn bool, recSize int, drainTimeout, cellBudget, writeTimeout time.Duration,
	replay bool, logger *slog.Logger, loadtest bool, clients, requests, retries int, seed int64) error {
	var cache *bench.Cache
	if !nocache {
		c, err := bench.OpenCache(cacheDir)
		if err != nil {
			logger.Warn("cache unavailable, continuing without", "dir", cacheDir, "error", err)
		} else {
			cache = c
		}
	}
	var memo *bench.ScheduleMemo
	if replay {
		memo = bench.NewScheduleMemo()
	}
	srv := serve.New(serve.Config{
		Workers:            workers,
		MaxQueue:           queue,
		MaxPerClient:       perClient,
		Cache:              cache,
		Logger:             logger,
		EnablePprof:        pprofOn,
		FlightRecorderSize: recSize,
		CellBudget:         cellBudget,
		Replay:             memo,
	})
	defer srv.Close()

	if loadtest {
		return runLoadtest(srv, clients, requests, retries, seed)
	}

	// A configured server, not bare ListenAndServe: header/idle timeouts
	// close slowloris connections, and the write timeout bounds a single
	// response end to end (it must exceed the longest expected cold query).
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	attrs := []any{"addr", ln.Addr().String(), "workers", workers, "queue", queue,
		"per_client", perClient, "pprof", pprofOn, "flight_recorder", recSize,
		"drain_timeout", drainTimeout, "cell_budget", cellBudget, "replay", memo != nil}
	if cache != nil {
		attrs = append(attrs, "cache_dir", cache.Dir())
	}
	logger.Info("pipmcoll-serve listening", attrs...)

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop() // a second signal kills the process immediately

	// Drain before Shutdown: flip /readyz, refuse new cells, let in-flight
	// flights finish (warm hits keep serving throughout), then close the
	// listener once connections are quiet.
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // Serve returns http.ErrServerClosed after Shutdown
	logger.Info("pipmcoll-serve stopped")
	return nil
}

// runLoadtest stands the server up in-process, warms one cell query, and
// measures the serving path under concurrent clients.
func runLoadtest(srv *serve.Server, clients, requests, retries int, seed int64) error {
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := query.Request{Cell: &query.Cell{Library: "PiP-MColl", Collective: "allgather",
		Nodes: 2, PPN: 2, Bytes: 1024}, Opts: query.Opts{Warmup: 1, Iters: 1}}
	fmt.Println("warming one cell query...")
	warm, err := serve.LoadTest(ts.URL, serve.LoadOpts{Clients: 1, PerClient: 1, Request: req})
	if err != nil {
		return err
	}
	if warm.Errors > 0 {
		return fmt.Errorf("warming query failed")
	}
	fmt.Printf("load-testing /query with %d clients x %d requests (warm cache, %d attempt budget)\n\n",
		clients, requests, retries)
	res, err := serve.LoadTest(ts.URL, serve.LoadOpts{
		Clients: clients, PerClient: requests, Request: req, Retries: retries, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}
