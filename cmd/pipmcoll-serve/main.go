// Command pipmcoll-serve exposes the deterministic benchmark harness as a
// simulation-as-a-service HTTP API. Clients POST what-if queries — a
// registered figure, an ad-hoc cell (library x collective x cluster shape
// x payload, optionally under a fault plan), or a tuning ladder — and get
// cached results in microseconds or scheduled execution over a bounded,
// client-fair worker pool. Results share the same content-addressed cache
// the CLIs use, so anything a CLI has computed is already warm here and
// vice versa.
//
// Usage:
//
//	pipmcoll-serve [-addr :8090] [-workers N] [-queue 256] [-per-client 64]
//	               [-nocache] [-cache-dir DIR]
//	pipmcoll-serve -loadtest [-clients 8] [-requests 50]
//
// Endpoints: POST /query (add ?stream=1 for NDJSON progress), GET
// /figures, GET /traces/{addr}, GET /metrics, GET /healthz. See the
// README's Serving section for the request schema and curl examples.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/query"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "cells simulating concurrently")
	queue := flag.Int("queue", 256, "max cells queued globally")
	perClient := flag.Int("per-client", 64, "max cells queued per client")
	nocache := flag.Bool("nocache", false, "bypass the on-disk result cache")
	cacheDir := flag.String("cache-dir", bench.DefaultCacheDir(), "result cache directory")
	loadtest := flag.Bool("loadtest", false, "run the bundled load generator against an in-process server and exit")
	clients := flag.Int("clients", 8, "loadtest: concurrent clients")
	requests := flag.Int("requests", 50, "loadtest: requests per client")
	flag.Parse()

	if err := run(*addr, *workers, *queue, *perClient, *nocache, *cacheDir,
		*loadtest, *clients, *requests); err != nil {
		fmt.Fprintln(os.Stderr, "pipmcoll-serve:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, queue, perClient int, nocache bool, cacheDir string,
	loadtest bool, clients, requests int) error {
	var cache *bench.Cache
	if !nocache {
		c, err := bench.OpenCache(cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipmcoll-serve: %v; continuing without cache\n", err)
		} else {
			cache = c
		}
	}
	srv := serve.New(serve.Config{
		Workers:      workers,
		MaxQueue:     queue,
		MaxPerClient: perClient,
		Cache:        cache,
	})
	defer srv.Close()

	if loadtest {
		return runLoadtest(srv, clients, requests)
	}
	fmt.Printf("pipmcoll-serve listening on %s (%d workers, queue %d, %d per client", addr, workers, queue, perClient)
	if cache != nil {
		fmt.Printf(", cache %s", cache.Dir())
	}
	fmt.Println(")")
	return http.ListenAndServe(addr, srv.Handler())
}

// runLoadtest stands the server up in-process, warms one cell query, and
// measures the serving path under concurrent clients.
func runLoadtest(srv *serve.Server, clients, requests int) error {
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := query.Request{Cell: &query.Cell{Library: "PiP-MColl", Collective: "allgather",
		Nodes: 2, PPN: 2, Bytes: 1024}, Opts: query.Opts{Warmup: 1, Iters: 1}}
	fmt.Println("warming one cell query...")
	warm, err := serve.LoadTest(ts.URL, serve.LoadOpts{Clients: 1, PerClient: 1, Request: req})
	if err != nil {
		return err
	}
	if warm.Errors > 0 {
		return fmt.Errorf("warming query failed")
	}
	fmt.Printf("load-testing /query with %d clients x %d requests (warm cache)\n\n", clients, requests)
	res, err := serve.LoadTest(ts.URL, serve.LoadOpts{Clients: clients, PerClient: requests, Request: req})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}
