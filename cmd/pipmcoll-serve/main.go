// Command pipmcoll-serve exposes the deterministic benchmark harness as a
// simulation-as-a-service HTTP API. Clients POST what-if queries — a
// registered figure, an ad-hoc cell (library x collective x cluster shape
// x payload, optionally under a fault plan), or a tuning ladder — and get
// cached results in microseconds or scheduled execution over a bounded,
// client-fair worker pool. Results share the same content-addressed cache
// the CLIs use, so anything a CLI has computed is already warm here and
// vice versa.
//
// Usage:
//
//	pipmcoll-serve [-addr :8090] [-workers N] [-queue 256] [-per-client 64]
//	               [-nocache] [-cache-dir DIR] [-pprof] [-log-level info]
//	pipmcoll-serve -loadtest [-clients 8] [-requests 50]
//
// Endpoints: POST /query (add ?stream=1 for NDJSON progress), GET
// /figures, GET /traces/{addr}, GET /metrics (Prometheus exposition;
// ?format=text for the aligned dump), GET /debug/requests (flight
// recorder), GET /debug/pprof/* (with -pprof), GET /healthz. See the
// README's Observability section for the request schema and curl examples.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/query"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "cells simulating concurrently")
	queue := flag.Int("queue", 256, "max cells queued globally")
	perClient := flag.Int("per-client", 64, "max cells queued per client")
	nocache := flag.Bool("nocache", false, "bypass the on-disk result cache")
	cacheDir := flag.String("cache-dir", bench.DefaultCacheDir(), "result cache directory")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof profiling endpoints")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	recSize := flag.Int("flight-recorder", serve.DefaultFlightRecorderSize, "flight recorder capacity (recent requests kept for /debug/requests)")
	loadtest := flag.Bool("loadtest", false, "run the bundled load generator against an in-process server and exit")
	clients := flag.Int("clients", 8, "loadtest: concurrent clients")
	requests := flag.Int("requests", 50, "loadtest: requests per client")
	flag.Parse()

	logger, err := newLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipmcoll-serve:", err)
		os.Exit(1)
	}
	if err := run(*addr, *workers, *queue, *perClient, *nocache, *cacheDir,
		*pprofOn, *recSize, logger, *loadtest, *clients, *requests); err != nil {
		logger.Error("fatal", "error", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger: structured key=value lines on
// stderr, so stdout stays reserved for results.
func newLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

func run(addr string, workers, queue, perClient int, nocache bool, cacheDir string,
	pprofOn bool, recSize int, logger *slog.Logger, loadtest bool, clients, requests int) error {
	var cache *bench.Cache
	if !nocache {
		c, err := bench.OpenCache(cacheDir)
		if err != nil {
			logger.Warn("cache unavailable, continuing without", "dir", cacheDir, "error", err)
		} else {
			cache = c
		}
	}
	srv := serve.New(serve.Config{
		Workers:            workers,
		MaxQueue:           queue,
		MaxPerClient:       perClient,
		Cache:              cache,
		Logger:             logger,
		EnablePprof:        pprofOn,
		FlightRecorderSize: recSize,
	})
	defer srv.Close()

	if loadtest {
		return runLoadtest(srv, clients, requests)
	}
	attrs := []any{"addr", addr, "workers", workers, "queue", queue,
		"per_client", perClient, "pprof", pprofOn, "flight_recorder", recSize}
	if cache != nil {
		attrs = append(attrs, "cache_dir", cache.Dir())
	}
	logger.Info("pipmcoll-serve listening", attrs...)
	return http.ListenAndServe(addr, srv.Handler())
}

// runLoadtest stands the server up in-process, warms one cell query, and
// measures the serving path under concurrent clients.
func runLoadtest(srv *serve.Server, clients, requests int) error {
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := query.Request{Cell: &query.Cell{Library: "PiP-MColl", Collective: "allgather",
		Nodes: 2, PPN: 2, Bytes: 1024}, Opts: query.Opts{Warmup: 1, Iters: 1}}
	fmt.Println("warming one cell query...")
	warm, err := serve.LoadTest(ts.URL, serve.LoadOpts{Clients: 1, PerClient: 1, Request: req})
	if err != nil {
		return err
	}
	if warm.Errors > 0 {
		return fmt.Errorf("warming query failed")
	}
	fmt.Printf("load-testing /query with %d clients x %d requests (warm cache)\n\n", clients, requests)
	res, err := serve.LoadTest(ts.URL, serve.LoadOpts{Clients: clients, PerClient: requests, Request: req})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}
