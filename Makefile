GO ?= go

.PHONY: all vet build test race chaos-race chaos-smoke chaos-recovery bench-smoke bench-gate serve-test serve-chaos ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel runner, the simulated clock and the shared observability
# recorders are the only concurrent code; run them under the race detector.
race:
	$(GO) test -race ./internal/bench ./internal/simtime ./internal/obs ./internal/trace

# Fault-injection and watchdog paths under the race detector: the fault
# plan is shared read-only across ranks and the watchdog fires from the
# engine while ranks block.
chaos-race:
	$(GO) test -race ./internal/fault ./internal/fabric ./internal/mpi -run 'Fault|Watchdog|Deadlock|Timeout|Noise|Stall|Loss|Degrade'

# Hot-path smoke: one pass of the simulator-throughput benchmark, the
# allocation ceilings (allocs/event on the medium world, per-op send/recv
# and park pins), and the same guard files under the race detector (the
# exact ceilings skip there; the correctness assertions still run).
bench-smoke:
	$(GO) test -run xxx -bench BenchmarkSimThroughput -benchtime 1x .
	$(GO) test ./internal/bench -run 'Throughput' -count=1
	$(GO) test ./internal/simtime ./internal/mpi -run 'Alloc|UntracedP2P|RendezvousSendBufferReuse|DispatchCounter' -count=1
	$(GO) test -race ./internal/simtime ./internal/mpi -run 'Alloc|UntracedP2P|RendezvousSendBufferReuse|DispatchCounter' -count=1

# Throughput regression gate: rerun the simulator-throughput suite
# (best-of-3 per world to shed host noise) and fail if ns/event regresses
# more than 15% against the recorded BENCH_throughput.json baseline, if
# allocs/event exceeds the pinned per-world ceilings, or if virtual time
# drifts (engine behaviour change). Each world also runs in
# schedule-replay mode against its <world>-replay baseline entry: replay
# must match live virtual time and event count exactly, stay under its
# alloc ceiling, and (with wall-clock checks on) beat live events/s by
# >=5x on the medium/large worlds. CI hosts aren't comparable to the one
# that recorded the baseline, so CI sets GATE_FLAGS=-gate-skip-wallclock
# (alloc ceilings, replay exactness and virtual-time pins still enforce
# there).
bench-gate:
	$(GO) run ./cmd/pipmcoll-bench -gate $(GATE_FLAGS)

# Query API + simulation server: the scheduler (singleflight, per-client
# fairness, admission control, mid-cell abandonment) and the HTTP layer
# under the race detector, then the fixed-seed warm-cache latency smoke
# (best-of-100 warm query round trip must be sub-millisecond; gated behind
# PIPMCOLL_SMOKE so plain `go test ./...` carries no timing flake risk).
serve-test:
	$(GO) test -race ./internal/query ./internal/serve
	PIPMCOLL_SMOKE=1 $(GO) test -run TestWarmQuerySubMillisecond -count=1 ./internal/serve

# End-to-end resilience smoke: fixed-seed scenarios must survive with
# verified results (exit 0) and an unknown scenario must be refused.
chaos-smoke:
	$(GO) run ./cmd/pipmcoll-chaos -scenario flaky-fabric -op allgather
	$(GO) run ./cmd/pipmcoll-chaos -scenario mixed -op allreduce
	! $(GO) run ./cmd/pipmcoll-chaos -scenario no-such-scenario 2>/dev/null

# Rank/node-death recovery: the ULFM layer and the self-healing loop under
# the race detector, plus the three death scenarios at fixed seeds — each
# must detect, shrink, re-run, and verify on the survivors (exit 0).
chaos-recovery:
	$(GO) test -race ./internal/mpi -run 'Kill|Shrink|Agree|Revoke|NodeLeaders|DeadlockErrorFormat'
	$(GO) test -race ./internal/recover ./internal/simtime -run 'Recover|MailboxStale|MailboxDeadline'
	$(GO) test -race ./cmd/pipmcoll-chaos
	$(GO) run ./cmd/pipmcoll-chaos -scenario rank-death
	$(GO) run ./cmd/pipmcoll-chaos -scenario node-death
	$(GO) run ./cmd/pipmcoll-chaos -scenario cascading-failures

# Serving resilience: graceful drain, request deadlines, the stuck-cell
# watchdog, retry/backoff clients and serve-side chaos injection, all
# under the race detector; the cache crash-safety sweep; then the
# fixed-seed drain smoke (warm loadtest with retries achieves 100%
# goodput on a draining server, fresh work gets the typed give-up).
serve-chaos:
	$(GO) test -race ./internal/serve -run 'Drain|Deadline|Watchdog|Chaos|Goodput|Resilience' -count=1
	$(GO) test -race ./internal/client -count=1
	$(GO) test -race ./internal/bench -run 'CacheSweep|CacheCorruption' -count=1
	PIPMCOLL_CHAOS=1 $(GO) test -race -count=1 ./internal/serve -run TestLoadtestAgainstDrainingServer

# Model checking: the internal/mc suite under the race detector (DPOR
# explorer, certificates, minimizer, kill sweeps), then a bounded exhaustive
# smoke through the CLI — Barrier/Bcast/Allreduce proved schedule-independent
# on 1x4 and 2x2 worlds (the 2x2 pass sweeps every one-kill timing too), and
# the planted broken-allreduce must be convicted (exit 1) with a replayable
# certificate.
verify:
	$(GO) test -race ./internal/mc
	$(GO) run ./cmd/pipmcoll-verify -nodes 1 -ppn 4
	$(GO) run ./cmd/pipmcoll-verify -nodes 2 -ppn 2 -kills
	! $(GO) run ./cmd/pipmcoll-verify -op broken-allreduce -nodes 1 -ppn 4 -elems 2 -max-violations 1 >/dev/null

ci: vet build test race chaos-race chaos-smoke chaos-recovery verify bench-smoke bench-gate serve-test serve-chaos
