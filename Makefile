GO ?= go

.PHONY: all vet build test race ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel runner and the simulated clock are the only concurrent code;
# run them under the race detector.
race:
	$(GO) test -race ./internal/bench ./internal/simtime

ci: vet build test race
