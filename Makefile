GO ?= go

.PHONY: all vet build test race ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel runner, the simulated clock and the shared observability
# recorders are the only concurrent code; run them under the race detector.
race:
	$(GO) test -race ./internal/bench ./internal/simtime ./internal/obs ./internal/trace

ci: vet build test race
