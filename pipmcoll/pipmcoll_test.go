package pipmcoll_test

import (
	"fmt"
	"testing"

	"repro/pipmcoll"
)

// The facade test exercises an end-to-end workflow exclusively through the
// public surface: world construction, PiP-MColl collectives (blocking and
// nonblocking), communicators, probes, and the comparator profiles.
func TestFacadeEndToEnd(t *testing.T) {
	cluster := pipmcoll.NewCluster(4, 3)
	world, err := pipmcoll.NewWorld(cluster, pipmcoll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	size := cluster.Size()
	if err := world.Run(func(r *pipmcoll.Rank) {
		var mc pipmcoll.Collectives

		// Allreduce of [rank] vectors.
		send := make([]byte, 64)
		pipmcoll.Fill(send, r.Rank())
		recv := make([]byte, 64)
		mc.Allreduce(r, send, recv, pipmcoll.Sum)
		want := 0.0
		for i := 0; i < size; i++ {
			tmp := make([]byte, 8)
			pipmcoll.Fill(tmp, i)
			want += pipmcoll.Float64At(tmp, 0)
		}
		if got := pipmcoll.Float64At(recv, 0); got != want {
			t.Errorf("rank %d allreduce = %v, want %v", r.Rank(), got, want)
		}

		// Nonblocking broadcast overlapping compute.
		buf := make([]byte, 32)
		if r.Rank() == 2 {
			pipmcoll.SetFloat64At(buf, 0, 7.5)
		}
		op := mc.IBcast(r, 2, buf)
		op.Wait(r)
		if pipmcoll.Float64At(buf, 0) != 7.5 {
			t.Errorf("rank %d ibcast wrong", r.Rank())
		}

		// Communicators and probes.
		c := pipmcoll.WorldComm(r).Split(r.Rank()%2, r.Rank())
		if c.Size() != size/2 {
			t.Errorf("split size %d", c.Size())
		}
		if c.Rank() == 0 && c.Size() > 1 {
			c.Send(1, 11, []byte{9})
		}
		if c.Rank() == 1 {
			st := r.Probe(pipmcoll.AnySource, 11)
			if st.Bytes != 1 {
				t.Errorf("probe bytes %d", st.Bytes)
			}
			b := make([]byte, 1)
			c.Recv(0, 11, b)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLibraries(t *testing.T) {
	ls := pipmcoll.Libraries()
	if len(ls) != 5 {
		t.Fatalf("got %d libraries", len(ls))
	}
	for _, l := range ls {
		got, err := pipmcoll.LibraryByName(l.Name())
		if err != nil || got.Name() != l.Name() {
			t.Fatalf("LibraryByName(%q): %v", l.Name(), err)
		}
	}
	if _, err := pipmcoll.LibraryByName("bogus"); err == nil {
		t.Fatal("unknown library resolved")
	}
}

func TestFacadeTunables(t *testing.T) {
	tun := pipmcoll.DefaultTunables()
	if tun.AllgatherLargeMin != 64<<10 {
		t.Fatalf("default switch = %d", tun.AllgatherLargeMin)
	}
	// Custom switch points flow through.
	cluster := pipmcoll.NewCluster(2, 2)
	world, err := pipmcoll.NewWorld(cluster, pipmcoll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := world.Run(func(r *pipmcoll.Rank) {
		mc := pipmcoll.Collectives{Tun: pipmcoll.Tunables{AllgatherLargeMin: 1}}
		send := make([]byte, 16)
		pipmcoll.Fill(send, r.Rank())
		recv := make([]byte, 4*16)
		mc.Allgather(r, send, recv) // forced onto the large path
		for i := 0; i < 4; i++ {
			tmp := make([]byte, 16)
			pipmcoll.Fill(tmp, i)
			if pipmcoll.Float64At(recv[i*16:], 0) != pipmcoll.Float64At(tmp, 0) {
				t.Errorf("rank %d block %d wrong", r.Rank(), i)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// ExampleNewWorld shows the smallest complete program: an allreduce over a
// simulated cluster, with the virtual runtime printed.
func ExampleNewWorld() {
	cluster := pipmcoll.NewCluster(2, 2)
	world, _ := pipmcoll.NewWorld(cluster, pipmcoll.DefaultConfig())
	_ = world.Run(func(r *pipmcoll.Rank) {
		var mc pipmcoll.Collectives
		send := make([]byte, 8)
		pipmcoll.SetFloat64At(send, 0, float64(r.Rank()))
		recv := make([]byte, 8)
		mc.Allreduce(r, send, recv, pipmcoll.Sum)
		if r.Rank() == 0 {
			fmt.Printf("sum over ranks: %v\n", pipmcoll.Float64At(recv, 0))
		}
	})
	// Output:
	// sum over ranks: 6
}

func TestFacadeApps(t *testing.T) {
	cluster := pipmcoll.NewCluster(2, 2)
	world, err := pipmcoll.NewWorld(cluster, pipmcoll.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lib, _ := pipmcoll.LibraryByName("PiP-MColl")
	if err := world.Run(func(r *pipmcoll.Rank) {
		res := pipmcoll.CG(r, lib, 80, 20)
		if res.Residual > 1e-3 {
			t.Errorf("CG residual %v", res.Residual)
		}
		js := pipmcoll.Jacobi2D(r, lib, 16, 5)
		if js.Checksum <= 0 {
			t.Errorf("jacobi checksum %v", js.Checksum)
		}
		ss := pipmcoll.SampleSort(r, 32)
		if ss.Global != 4*32 {
			t.Errorf("sample sort count %d", ss.Global)
		}
		km := pipmcoll.KMeans(r, lib, 20, 2, 3, 3)
		if km.Inertia <= 0 {
			t.Errorf("kmeans inertia %v", km.Inertia)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if pipmcoll.SquarestGrid(12).Rows() != 3 {
		t.Error("grid helper wrong")
	}
}
