// Package pipmcoll is the public face of the PiP-MColl reproduction: a
// simulated MPI environment with the paper's multi-object collectives, the
// baseline algorithm library, and the comparator MPI profiles, re-exported
// from the internal packages as one importable surface.
//
// A minimal program:
//
//	cluster := pipmcoll.NewCluster(8, 6) // 8 nodes x 6 processes
//	world, _ := pipmcoll.NewWorld(cluster, pipmcoll.DefaultConfig())
//	err := world.Run(func(r *pipmcoll.Rank) {
//	    var mc pipmcoll.Collectives
//	    send := make([]byte, 1024)
//	    recv := make([]byte, 1024)
//	    mc.Allreduce(r, send, recv, pipmcoll.Sum)
//	})
//
// Everything runs in virtual time on a deterministic discrete-event
// simulator; see the repository README for the architecture and DESIGN.md
// for the reproduction methodology.
package pipmcoll

import (
	"repro/internal/core"
	"repro/internal/libs"
	"repro/internal/mpi"
	"repro/internal/nums"
	"repro/internal/topology"
)

// Core simulation types, re-exported by alias so their full method sets are
// available here.
type (
	// Config selects the transport models (fabric + shared memory) of a
	// simulated world.
	Config = mpi.Config
	// World is one simulated MPI job.
	World = mpi.World
	// Rank is one simulated MPI process; collective and point-to-point
	// operations hang off it.
	Rank = mpi.Rank
	// Comm is a communicator (ordered rank subset with a private tag
	// space), created via WorldComm and Comm.Split.
	Comm = mpi.Comm
	// Request is a pending nonblocking point-to-point operation.
	Request = mpi.Request
	// AsyncOp is a pending nonblocking collective.
	AsyncOp = mpi.AsyncOp
	// Status describes a probed message.
	Status = mpi.Status
	// Cluster describes the simulated machine's shape.
	Cluster = topology.Cluster
	// Op is a reduction operator over float64 vectors encoded in bytes.
	Op = nums.Op
	// Tunables are PiP-MColl's algorithm switch points.
	Tunables = core.Tunables
	// Collectives runs PiP-MColl's collectives; the zero value uses the
	// paper's switch points. Its methods are the paper's three primary
	// collectives (Scatter, Allgather, Allreduce), the extensions
	// (Bcast, Gather, Reduce, Alltoall), their nonblocking I-variants,
	// and the auxiliary intranode collectives.
	Collectives = core.Coll
	// Library is a comparator MPI profile (PiP-MPICH, Open MPI,
	// MVAPICH2, Intel MPI, or PiP-MColl itself).
	Library = libs.Library
)

// Wildcards and sentinels.
const (
	// AnySource matches receives and probes against any sender.
	AnySource = mpi.AnySource
	// Undefined opts a rank out of Comm.Split.
	Undefined = mpi.Undefined
)

// The standard reduction operators.
var (
	Sum  = nums.Sum
	Prod = nums.Prod
	Min  = nums.Min
	Max  = nums.Max
)

// NewCluster describes a machine of nodes x processesPerNode ranks in the
// block layout the paper's algorithms assume.
func NewCluster(nodes, processesPerNode int) *Cluster {
	return topology.New(nodes, processesPerNode, topology.Block)
}

// DefaultConfig returns the calibrated transport configuration used by the
// paper experiments (OPA-like fabric, Broadwell-like nodes, PiP intranode
// mechanism).
func DefaultConfig() Config { return mpi.DefaultConfig() }

// NewWorld builds a simulated MPI job on the cluster.
func NewWorld(cluster *Cluster, cfg Config) (*World, error) {
	return mpi.NewWorld(cluster, cfg)
}

// WorldComm returns the communicator spanning every rank.
func WorldComm(r *Rank) *Comm { return mpi.WorldComm(r) }

// DefaultTunables returns the paper's algorithm switch points.
func DefaultTunables() Tunables { return core.DefaultTunables() }

// Fill writes a deterministic rank-dependent float64 pattern into buf
// (length a multiple of 8), for building verifiable workloads.
func Fill(buf []byte, seed int) { nums.Fill(buf, seed) }

// Float64At reads element i of the float64 vector encoded in b.
func Float64At(b []byte, i int) float64 { return nums.F64At(b, i) }

// SetFloat64At writes element i of the float64 vector encoded in b.
func SetFloat64At(b []byte, i int, x float64) { nums.SetF64At(b, i, x) }

// Comparator library profiles, for benchmarking against PiP-MColl.
func Libraries() []*Library { return libs.All() }

// LibraryByName resolves a profile by display name ("PiP-MColl",
// "PiP-MPICH", "OpenMPI", "MVAPICH2", "IntelMPI", "PiP-MColl-small").
func LibraryByName(name string) (*Library, error) { return libs.ByName(name) }

// Grid is a 2D Cartesian process grid helper for stencil codes.
type Grid = topology.Grid

// NewGrid shapes size ranks into rows x cols (row-major).
func NewGrid(size, rows, cols int) Grid { return topology.NewGrid(size, rows, cols) }

// SquarestGrid returns the most-square factorization of size.
func SquarestGrid(size int) Grid { return topology.SquarestGrid(size) }
