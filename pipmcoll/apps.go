package pipmcoll

import (
	"repro/internal/apps"
	"repro/internal/libs"
)

// The mini-applications (integration workloads over the full stack),
// re-exported for downstream experimentation. Each verifies its numerics
// against a serial reference in the repository's tests.

// CGResult reports a distributed conjugate-gradient run.
type CGResult = apps.CGResult

// KMeansResult reports a distributed k-means run.
type KMeansResult = apps.KMeansResult

// SampleSortResult reports a distributed sample-sort run.
type SampleSortResult = apps.SampleSortResult

// JacobiResult reports a distributed 2D Jacobi run.
type JacobiResult = apps.JacobiResult

// CG solves the tridiag(-1,4,-1) system with distributed conjugate
// gradient (halo p2p + dot-product allreduces through lib).
func CG(r *Rank, lib *libs.Library, n, iters int) CGResult {
	return apps.CG(r, lib, n, iters)
}

// KMeans clusters synthetic points with Lloyd's algorithm (centroid
// allreduce per iteration).
func KMeans(r *Rank, lib *libs.Library, pointsPerRank, dim, k, iters int) KMeansResult {
	return apps.KMeans(r, lib, pointsPerRank, dim, k, iters)
}

// SampleSort globally sorts synthetic keys (alltoallv redistribution).
func SampleSort(r *Rank, keysPerRank int) SampleSortResult {
	return apps.SampleSort(r, keysPerRank)
}

// Jacobi2D relaxes the Laplace equation on a G x G grid (halo p2p +
// Max-allreduce per sweep).
func Jacobi2D(r *Rank, lib *libs.Library, g, iters int) JacobiResult {
	return apps.Jacobi2D(r, lib, g, iters)
}
